"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.gpusim.trace import Timeline
from repro.runtime.metrics import (
    active_time_breakdown,
    active_time_breakdown_by_service,
    geometric_mean,
    latency_stats,
    latency_stats_by_service,
    merged_latency_sketch,
    merged_latency_stats,
    merged_p99_ms,
    throughput_improvement,
)
from repro.runtime.replay import StreamingResult
from repro.runtime.server import ExecutedKernel, ServerResult


def result(be_work=10.0, horizon=100.0, latencies=(40.0, 45.0, 48.0),
           tc=None, cd=None, end=100.0, start=0.0):
    res = ServerResult(
        qos_ms=50.0, horizon_ms=horizon, end_ms=end,
        latencies_ms=list(latencies), be_work_ms={"fft": be_work},
        tc_timeline=tc if tc is not None else Timeline(),
        cd_timeline=cd if cd is not None else Timeline(),
        start_ms=start,
    )
    return res


class TestThroughputImprovement:
    def test_eq10(self):
        tacker = result(be_work=13.0)
        baymax = result(be_work=10.0)
        assert throughput_improvement(tacker, baymax) == pytest.approx(0.3)

    def test_mismatched_horizons_rejected(self):
        with pytest.raises(SchedulingError):
            throughput_improvement(result(horizon=100.0),
                                   result(horizon=200.0))

    def test_zero_baseline_rejected(self):
        with pytest.raises(SchedulingError):
            throughput_improvement(result(), result(be_work=0.0))


class TestLatencyStats:
    def test_fields(self):
        stats = latency_stats(result(latencies=[40.0, 45.0, 52.0]))
        assert stats["mean_ms"] == pytest.approx(45.6667, abs=1e-3)
        assert stats["max_ms"] == 52.0
        assert stats["violation_rate"] == pytest.approx(1 / 3)
        assert stats["qos_ms"] == 50.0

    def test_empty_latencies_yield_nan_not_crash(self):
        import math

        stats = latency_stats(result(latencies=[]))
        assert stats["qos_ms"] == 50.0
        for key, value in stats.items():
            if key != "qos_ms":
                assert math.isnan(value), key

    def test_empty_result_properties_are_nan(self):
        import math

        empty = result(latencies=[])
        assert math.isnan(empty.mean_latency_ms)
        assert math.isnan(empty.p99_latency_ms)
        assert math.isnan(empty.qos_violation_rate)


class TestActiveTimeBreakdown:
    def test_fig2_stacking(self):
        tc = Timeline()
        tc.add(0.0, 60.0)
        cd = Timeline()
        cd.add(60.0, 100.0)
        stats = active_time_breakdown(result(tc=tc, cd=cd, end=100.0))
        assert stats["tc_active"] == pytest.approx(0.6)
        assert stats["cd_active"] == pytest.approx(0.4)
        assert stats["both_active"] == 0.0
        assert stats["stacked"] == pytest.approx(1.0)

    def test_overlap_pushes_stacked_above_one(self):
        tc = Timeline()
        tc.add(0.0, 80.0)
        cd = Timeline()
        cd.add(40.0, 100.0)
        stats = active_time_breakdown(result(tc=tc, cd=cd, end=100.0))
        assert stats["both_active"] == pytest.approx(0.4)
        assert stats["stacked"] > 1.0

    def test_empty_run_rejected(self):
        with pytest.raises(SchedulingError):
            active_time_breakdown(result(end=0.0))

    def test_normalizes_by_busy_span_not_end_time(self):
        # First kernel starts at t=60 (e.g. an LC-only run whose first
        # query arrives late): the busy span is 40 ms, not 100 ms.
        # Normalizing by end_ms overstated idle lead-in as utilization.
        tc = Timeline()
        tc.add(60.0, 100.0)
        stats = active_time_breakdown(
            result(tc=tc, end=100.0, start=60.0)
        )
        assert stats["tc_active"] == pytest.approx(1.0)
        assert stats["stacked"] == pytest.approx(1.0)

    def test_zero_span_with_late_start_rejected(self):
        with pytest.raises(SchedulingError):
            active_time_breakdown(result(end=60.0, start=60.0))


class TestPerServiceStats:
    def multi_tenant(self):
        res = result(latencies=[40.0, 45.0, 52.0, 30.0])
        res.latencies_by_model = {
            "Resnet50": [40.0, 45.0, 52.0],
            "Vgg19": [30.0],
        }
        return res

    def test_per_service_latency_stats(self):
        stats = latency_stats_by_service(self.multi_tenant())
        assert set(stats) == {"Resnet50", "Vgg19"}
        assert stats["Resnet50"]["max_ms"] == 52.0
        assert stats["Resnet50"]["violation_rate"] == pytest.approx(1 / 3)
        assert stats["Vgg19"]["violation_rate"] == 0.0
        # Same shape as the global latency_stats.
        assert set(stats["Vgg19"]) == set(latency_stats(self.multi_tenant()))

    def test_per_service_stats_empty_for_be_only_run(self):
        assert latency_stats_by_service(result(latencies=[])) == {}

    def test_per_service_active_time(self):
        res = result(end=100.0)
        res.executed = [
            ExecutedKernel(0.0, 60.0, "lc", "tgemm_l", 60.0, 0.0,
                           service="Resnet50"),
            ExecutedKernel(60.0, 100.0, "fused", "fused_x", 80.0, 100.0,
                           service="Vgg19"),
            ExecutedKernel(0.0, 50.0, "be", "fft", 0.0, 50.0,
                           service="fft"),
        ]
        breakdown = active_time_breakdown_by_service(res)
        assert set(breakdown) == {"Resnet50", "Vgg19", "fft"}
        assert breakdown["Resnet50"]["tc_active"] == pytest.approx(0.6)
        assert breakdown["Resnet50"]["cd_active"] == 0.0
        # The fused launch is charged to the LC service it carried.
        assert breakdown["Vgg19"]["tc_active"] == pytest.approx(0.2)
        assert breakdown["Vgg19"]["cd_active"] == pytest.approx(0.4)
        assert breakdown["fft"]["cd_active"] == pytest.approx(0.5)

    def test_unnamed_service_falls_back_to_kernel_name(self):
        res = result(end=100.0)
        res.executed = [
            ExecutedKernel(0.0, 50.0, "be", "fft", 0.0, 50.0),
        ]
        assert set(active_time_breakdown_by_service(res)) == {"fft"}

    def test_unrecorded_run_rejected(self):
        with pytest.raises(SchedulingError, match="record_kernels"):
            active_time_breakdown_by_service(result())


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(SchedulingError):
            geometric_mean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(SchedulingError):
            geometric_mean([2.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(SchedulingError):
            geometric_mean([])


def streaming(latencies, qos=50.0, upper=200.0, bins=4096):
    res = StreamingResult(
        qos_ms=qos, horizon_ms=100.0, be_names=("fft",),
        sketch_upper_ms=upper, sketch_bins=bins,
    )
    for latency in latencies:
        res.note_query_latency("Vgg16", latency)
    return res


class TestMergedFleetStats:
    """Fleet aggregation over mixed list-based and streaming replicas
    (the autoscaling control plane's aggregation surface)."""

    def test_all_list_replicas_stay_exact(self):
        results = [result(latencies=(40.0, 45.0)), result(latencies=(48.0,))]
        assert merged_latency_sketch(results) is None
        exact = np.percentile([40.0, 45.0, 48.0], 99)
        assert merged_p99_ms(results) == pytest.approx(exact)

    def test_sketch_estimate_within_tolerance(self):
        values = [float(v) for v in range(1, 101)]
        res = streaming(values)
        merged = merged_latency_sketch([res])
        assert merged is not None
        # the ceil-rank order statistic: the 99th smallest of 100
        exact = sorted(values)[int(np.ceil(0.99 * len(values))) - 1]
        estimate = merged.quantile(0.99)
        assert exact <= estimate <= exact + merged.tolerance_ms

    def test_mixed_replicas_fold_into_one_sketch(self):
        stream = streaming([40.0, 45.0, 60.0])
        lists = result(latencies=(42.0, 55.0))
        merged = merged_latency_sketch([stream, lists])
        assert merged.n == 5
        assert merged.sum == pytest.approx(242.0)
        stats = merged_latency_stats([stream, lists], qos_ms=50.0)
        assert stats["count"] == 5
        assert stats["mean_ms"] == pytest.approx(242.0 / 5)
        assert stats["max_ms"] == pytest.approx(60.0)
        # violations: 60.0 from the stream, 55.0 from the list
        assert stats["violation_rate"] == pytest.approx(2 / 5)

    def test_merge_rejects_mismatched_geometry(self):
        a = streaming([40.0], bins=1024)
        b = streaming([41.0], bins=2048)
        with pytest.raises(SchedulingError, match="different geometry"):
            merged_latency_sketch([a, b])

    def test_empty_fleet_is_nan(self):
        assert merged_p99_ms([]) != merged_p99_ms([])  # NaN
        stats = merged_latency_stats([], qos_ms=50.0)
        assert stats["count"] == 0
        assert stats["p99_ms"] != stats["p99_ms"]

    def test_streaming_replica_with_no_queries(self):
        res = streaming([])
        assert merged_p99_ms([res]) != merged_p99_ms([res])  # NaN
        stats = merged_latency_stats([res], qos_ms=50.0)
        assert stats["count"] == 0

    def test_latency_stats_reads_the_sketch(self):
        res = streaming([40.0, 45.0, 60.0])
        stats = latency_stats(res)
        assert stats["mean_ms"] == pytest.approx(145.0 / 3)
        assert stats["max_ms"] == pytest.approx(60.0)
        assert stats["violation_rate"] == pytest.approx(1 / 3)
