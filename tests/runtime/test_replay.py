"""Tests for trace-driven replay: traces, profiles, scenarios, folds."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, SchedulingError
from repro.runtime.replay import (
    NAMED_SCENARIOS,
    SCENARIO_SCHEMA,
    DiurnalProfile,
    FlashCrowdProfile,
    MMPPProfile,
    RecordedTraceSource,
    Scenario,
    StreamingResult,
    TenantChurnProfile,
    Trace,
    build_profile,
    list_scenarios,
    load_scenario,
    serve_trace,
    synthesize_trace,
    validate_scenario,
)
from repro.runtime.system import TackerSystem
from repro.runtime.workload import merged_arrival_stream


@pytest.fixture(scope="module")
def system(gpu):
    return TackerSystem(gpu=gpu)


def scenario(**overrides):
    base = dict(
        name="t",
        description="test scenario",
        lc_services=("resnet50", "vgg16"),
        be_apps=("fft",),
        arrival={"kind": "steady"},
        queries=40,
        quick_queries=10,
        rate_scale=0.15,
    )
    base.update(overrides)
    return Scenario(**base)


class TestTrace:
    def test_roundtrip_bit_identical(self, tmp_path, library, oracle):
        trace = synthesize_trace(scenario(), library, oracle)
        path = trace.write_jsonl(tmp_path / "t.jsonl")
        back = Trace.read_jsonl(path)
        assert back.services == trace.services
        assert np.array_equal(back.arrivals_ms, trace.arrivals_ms)
        assert np.array_equal(back.service_idx, trace.service_idx)
        assert back.meta == trace.meta
        # Re-serialization is byte-stable: record -> replay -> record.
        again = back.write_jsonl(tmp_path / "t2.jsonl")
        assert again.read_bytes() == path.read_bytes()

    def test_rejects_unknown_schema(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"schema": "nope/9", "services": []}) + "\n")
        with pytest.raises(ConfigError, match="schema"):
            Trace.read_jsonl(bad)

    def test_rejects_unsorted_arrivals(self):
        with pytest.raises(ConfigError, match="sorted"):
            Trace(("a",), np.array([2.0, 1.0]), np.array([0, 0]))

    def test_rejects_index_out_of_range(self):
        with pytest.raises(ConfigError, match="index"):
            Trace(("a",), np.array([1.0]), np.array([3]))

    def test_from_stream_ties_broken_by_name(self):
        trace = Trace.from_stream([(5.0, "b"), (5.0, "a"), (1.0, "b")])
        assert trace.services == ("a", "b")
        assert list(trace.events()) == [(1.0, "b"), (5.0, "a"), (5.0, "b")]

    def test_horizon_is_last_arrival_plus_qos(self):
        trace = Trace.from_stream([(1.0, "a"), (7.0, "a")])
        assert trace.horizon_ms(50.0) == 57.0
        with pytest.raises(SchedulingError):
            Trace(("a",), np.array([]), np.array([])).horizon_ms(50.0)

    def test_recorded_source_truncates_to_prefix(
        self, tmp_path, library, oracle
    ):
        trace = synthesize_trace(scenario(), library, oracle)
        path = trace.write_jsonl(tmp_path / "t.jsonl")
        short = RecordedTraceSource(path).trace(library, oracle, n_queries=7)
        assert len(short) == 7
        assert np.array_equal(short.arrivals_ms, trace.arrivals_ms[:7])
        assert short.meta["truncated_to"] == 7
        full = RecordedTraceSource(path).trace(library, oracle)
        assert len(full) == len(trace)


class TestProfiles:
    def test_diurnal_floor_binds(self):
        prof = DiurnalProfile(period_ms=1000.0, amplitude=1.0, floor=0.2)
        # The trough of a full-amplitude sine would hit zero; the floor
        # keeps the service alive through the night.
        trough = prof.multiplier(750.0)
        assert trough == pytest.approx(0.2)
        assert prof.multiplier(250.0) == pytest.approx(2.0)

    def test_diurnal_validation(self):
        with pytest.raises(ConfigError):
            DiurnalProfile(period_ms=0.0, amplitude=0.5)
        with pytest.raises(ConfigError):
            DiurnalProfile(period_ms=1000.0, amplitude=1.5)

    def test_flash_crowd_shape(self):
        prof = FlashCrowdProfile(at_ms=100.0, peak=4.0, decay_ms=50.0)
        assert prof.multiplier(0.0) == 1.0
        assert prof.multiplier(100.0) == pytest.approx(4.0)
        assert 1.0 < prof.multiplier(200.0) < 4.0

    def test_mmpp_deterministic_per_seed(self):
        kwargs = dict(on_ms=50.0, off_ms=100.0, on_mult=3.0, off_mult=0.5)
        a = MMPPProfile(seed=5, **kwargs)
        b = MMPPProfile(seed=5, **kwargs)
        points = [float(t) for t in np.linspace(0.0, 2000.0, 101)]
        assert [a.multiplier(t) for t in points] == [
            b.multiplier(t) for t in points
        ]

    def test_mmpp_next_active_skips_dead_state(self):
        prof = MMPPProfile(
            seed=5, on_ms=50.0, off_ms=100.0, on_mult=2.0, off_mult=0.0
        )
        for t in (0.0, 123.0, 977.0):
            resumed = prof.next_active(t)
            assert resumed >= t
            assert prof.multiplier(resumed) > 0

    def test_churn_windows(self):
        prof = TenantChurnProfile([(0.0, 100.0), (300.0, None)])
        assert prof.multiplier(50.0) == 1.0
        assert prof.multiplier(150.0) == 0.0
        assert prof.multiplier(100.0) == 0.0  # half-open upper edge
        assert prof.multiplier(300.0) == 1.0
        assert prof.next_active(150.0) == 300.0

    def test_churn_leave_for_good(self):
        prof = TenantChurnProfile([(0.0, 100.0)])
        assert prof.next_active(150.0) is None

    def test_churn_validation(self):
        with pytest.raises(ConfigError):
            TenantChurnProfile([])
        with pytest.raises(ConfigError):
            TenantChurnProfile([(100.0, 50.0)])

    def test_build_profile_matches_windows_case_insensitively(self):
        arrival = {
            "kind": "tenant-churn",
            "windows": {"vgg16": [[0.0, 100.0]]},
        }
        prof = build_profile(arrival, 0, "VGG16", seed=1)
        assert prof.multiplier(150.0) == 0.0
        resident = build_profile(arrival, 1, "Resnet50", seed=1)
        assert resident.multiplier(150.0) == 1.0

    def test_build_profile_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            build_profile({"kind": "weibull"}, 0, "resnet50", seed=1)


class TestSynthesis:
    def test_deterministic_per_seed(self, library, oracle):
        spec = scenario(
            arrival={"kind": "diurnal", "period_ms": 2000.0,
                     "amplitude": 0.7},
        )
        a = synthesize_trace(spec, library, oracle)
        b = synthesize_trace(spec, library, oracle)
        assert np.array_equal(a.arrivals_ms, b.arrivals_ms)
        assert np.array_equal(a.service_idx, b.service_idx)

    def test_steady_bit_equal_to_live_path(self, library, oracle):
        """The steady scenario IS merged_arrival_stream, bit for bit."""
        spec = scenario()
        trace = synthesize_trace(spec, library, oracle)
        from repro.models.zoo import model_by_name

        live = merged_arrival_stream(
            [model_by_name(n) for n in spec.lc_services],
            library, oracle, count=spec.queries, seed=spec.seed,
            load=spec.load, qos_ms=spec.qos_ms,
            rate_scale=spec.rate_scale, process=spec.process,
        )
        assert trace.merged_stream() == live

    def test_churned_tenant_produces_no_arrivals_in_gap(
        self, library, oracle
    ):
        spec = scenario(
            lc_services=("resnet50", "vgg16"),
            arrival={
                "kind": "tenant-churn",
                "windows": {"vgg16": [[0.0, 500.0], [2000.0, None]]},
            },
            queries=60,
        )
        trace = synthesize_trace(spec, library, oracle)
        inside_gap = [
            t for t, name in trace.events()
            if name == "VGG16" and 500.0 <= t < 2000.0
        ]
        assert inside_gap == []

    def test_leaving_tenant_truncates(self, library, oracle):
        spec = scenario(
            arrival={
                "kind": "tenant-churn",
                "windows": {"vgg16": [[0.0, 200.0]]},
            },
            queries=60,
        )
        trace = synthesize_trace(spec, library, oracle)
        counts = trace.service_counts()
        assert counts["VGG16"] < 30  # left early, budget unproduced
        assert counts["Resnet50"] == 30

    def test_too_few_queries_rejected(self, library, oracle):
        with pytest.raises(SchedulingError):
            synthesize_trace(scenario(), library, oracle, n_queries=1)


class TestScenarioLibrary:
    def test_library_ships_the_named_scenarios(self):
        assert set(NAMED_SCENARIOS) <= set(list_scenarios())

    def test_every_shipped_scenario_validates(self):
        for name in list_scenarios():
            spec = load_scenario(name)
            assert spec.schema == SCENARIO_SCHEMA
            assert spec.n_queries(quick=True) <= spec.n_queries()
            assert spec.run_config().scenario == spec.name

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigError, match="known:"):
            load_scenario("no-such-scenario")

    def test_rate_scale_defaults_to_equal_share(self):
        spec = scenario(rate_scale=0.0)
        assert spec.rate_scale == pytest.approx(0.5)

    def test_validate_rejects_missing_and_unknown_keys(self):
        good = {
            "schema": SCENARIO_SCHEMA,
            "name": "x",
            "description": "d",
            "lc_services": ["resnet50"],
            "be_apps": ["fft"],
            "arrival": {"kind": "steady"},
        }
        validate_scenario(dict(good))
        with pytest.raises(ConfigError, match="missing"):
            validate_scenario({k: v for k, v in good.items() if k != "name"})
        with pytest.raises(ConfigError, match="unknown keys"):
            validate_scenario({**good, "burst": 2})
        with pytest.raises(ConfigError, match="schema"):
            validate_scenario({**good, "schema": "repro-scenario/99"})

    def test_validate_checks_arrival_params(self):
        good = {
            "schema": SCENARIO_SCHEMA,
            "name": "x",
            "description": "d",
            "lc_services": ["resnet50"],
            "be_apps": ["fft"],
            "arrival": {"kind": "diurnal", "period_ms": 1000.0},
        }
        with pytest.raises(ConfigError, match="needs parameters"):
            validate_scenario(good)
        with pytest.raises(ConfigError, match="kind"):
            validate_scenario(
                {**good, "arrival": {"kind": "weibull"}}
            )


class TestStreamingFold:
    """The constant-memory fold must match the list-based reference."""

    @pytest.fixture(scope="class")
    def both(self, gpu, library, oracle):
        system = TackerSystem(gpu=gpu)
        spec = scenario(queries=60)
        trace = synthesize_trace(spec, library, oracle)
        exact = serve_trace(system, trace, spec.be_apps, streaming=False)
        fold = serve_trace(system, trace, spec.be_apps, streaming=True)
        return exact, fold

    def test_counters_exact(self, both):
        exact, fold = both
        assert isinstance(fold, StreamingResult)
        assert fold.n_queries == len(exact.latencies_ms)
        assert fold.end_ms == exact.end_ms
        assert fold.n_lc_kernels == exact.n_lc_kernels
        assert fold.n_be_kernels == exact.n_be_kernels
        assert fold.n_fused_kernels == exact.n_fused_kernels
        assert fold.be_work_ms == exact.be_work_ms

    def test_latency_moments_exact(self, both):
        exact, fold = both
        lat = np.asarray(exact.latencies_ms)
        assert fold.mean_latency_ms == pytest.approx(float(lat.mean()))
        assert fold.max_latency_ms == float(lat.max())
        violations = int(np.sum(lat > exact.qos_ms))
        assert fold.n_violations == violations

    def test_p99_within_sketch_tolerance(self, both):
        exact, fold = both
        reference = float(np.percentile(
            np.asarray(exact.latencies_ms), 99, method="higher"
        ))
        drift = fold.p99_latency_ms - reference
        assert 0.0 <= drift <= fold.sketch.tolerance_ms

    def test_active_breakdown_matches_timelines(self, both):
        exact, fold = both
        from repro.runtime.metrics import active_time_breakdown

        reference = active_time_breakdown(exact)
        folded = fold.active_breakdown()
        for key, value in reference.items():
            assert folded[key] == pytest.approx(value, abs=1e-9), key

    def test_summary_dict_json_safe(self, both):
        _, fold = both
        summary = fold.summary_dict()
        assert summary["schema"] == "repro-replay-summary/2"
        json.dumps(summary)  # must not raise

    def test_window_fold_counts_synthetic_stream(self):
        """Hand-fed completions land in known tumbling windows."""
        fold = StreamingResult(
            qos_ms=50.0, horizon_ms=5000.0, be_names=("fft",),
            window_ms=1000.0,
        )
        # window [0, 1000): clean; [1000, 2000): one violation;
        # [3000, 4000): all violations ([2000, 3000) is empty and must
        # not be counted).
        for latency, end in [
            (10.0, 100.0), (20.0, 900.0),
            (30.0, 1100.0), (80.0, 1900.0),
            (90.0, 3100.0), (95.0, 3200.0),
        ]:
            fold.note_query_latency("Resnet50", latency, end_ms=end)
        stats = fold.window_stats()
        assert stats["window_ms"] == 1000.0
        assert stats["windows"] == 3
        assert stats["violation_windows"] == 2
        drift = stats["worst_window_p99_ms"] - 95.0
        assert 0.0 <= drift <= fold.sketch.tolerance_ms
        # read-only: a second call returns the same numbers
        assert fold.window_stats() == stats

    def test_window_fold_of_a_real_run(self, both):
        exact, fold = both
        stats = fold.window_stats()
        assert stats["windows"] >= 1
        assert 0 <= stats["violation_windows"] <= stats["windows"]
        span = exact.end_ms - exact.start_ms
        assert stats["windows"] <= span / stats["window_ms"] + 2
        # the worst window cannot beat the whole run's p99
        assert stats["worst_window_p99_ms"] >= fold.p99_latency_ms \
            or stats["windows"] == 1

    def test_summary_v1_view_roundtrip(self, both):
        from repro.runtime.replay import summary_v1_view

        _, fold = both
        summary = fold.summary_dict()
        view = summary_v1_view(summary)
        assert view["schema"] == "repro-replay-summary/1"
        for key in (
            "window_ms", "windows", "violation_windows",
            "worst_window_p99_ms",
        ):
            assert key in summary and key not in view
        # everything else passes through untouched
        for key, value in view.items():
            if key != "schema":
                assert summary[key] == value
        # a v1 summary passes through unchanged
        assert summary_v1_view(view) == view
        with pytest.raises(SchedulingError, match="not a replay"):
            summary_v1_view({"schema": "repro-replay-summary/9"})

    def test_empty_streaming_run_rejected(self, system, library, oracle):
        empty = Trace(("Resnet50",), np.array([]), np.array([]))
        with pytest.raises(SchedulingError):
            serve_trace(system, empty, ("fft",))
