"""Tests for the policy plugin framework: registry, shims, the zoo.

Covers the package split's contract: the registry rejects collisions
and mistypes early (with a did-you-mean), late registrations are
immediately visible everywhere names resolve, the moved Tacker/Baymax
policies serve byte-identical runs through the registry and through
direct construction, heterogeneous per-node clusters work, and each
zoo policy survives a served run under the full invariant auditor.
"""

from __future__ import annotations

import warnings

import pytest

from repro import audit
from repro.errors import ConfigError, SchedulingError
from repro.models.zoo import model_by_name
from repro.runtime.cluster import ClusterSpec, NodeSpec, serve_cluster
from repro.runtime.autoscale import AutoscaleSpec
from repro.runtime.policies import (
    BaymaxPolicy,
    SchedulerPolicy,
    TackerPolicy,
    list_policies,
    policy_from_name,
    register_policy,
    unregister_policy,
)
from repro.runtime.query import BEApplication, KernelInstance, Query
from repro.runtime.runconfig import RunConfig
from repro.runtime.server import ColocationServer
from repro.runtime.system import TackerSystem

BUILTINS = ("baymax", "gpuos", "hfuse", "multifuse", "spatial", "tacker")


@pytest.fixture(scope="module")
def system(gpu):
    sys_ = TackerSystem(gpu=gpu, config=RunConfig(queries=30))
    model = model_by_name("resnet50")
    for be_name in ("sgemm", "mriq"):
        sys_.prepare_pair(
            model,
            BEApplication(be_name, (
                KernelInstance(sys_.library.get(be_name),
                               sys_.library.get(be_name).default_grid),
            )),
        )
    return sys_


def be_app(system, name):
    kernel = system.library.get(name)
    return BEApplication(
        name, (KernelInstance(kernel, kernel.default_grid),)
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert list_policies() == BUILTINS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SchedulingError, match="already registered"):
            register_policy("tacker", lambda system, guard: None)

    def test_replace_allows_override(self):
        sentinel = object()
        try:
            register_policy(
                "tacker", lambda system, guard: sentinel, replace=True
            )
            assert policy_from_name("tacker", system=None) is sentinel
        finally:
            from repro.runtime.policies.tacker import _factory

            register_policy("tacker", _factory, replace=True)

    def test_unknown_name_lists_registry_with_hint(self):
        with pytest.raises(SchedulingError) as info:
            policy_from_name("tackr", system=None)
        message = str(info.value)
        assert "did you mean 'tacker'?" in message
        for name in BUILTINS:
            assert name in message

    def test_late_registration_visible(self, system):
        def factory(system, guard):
            return BaymaxPolicy(
                system.gpu, system.models, system.qos_ms, guard=guard
            )

        try:
            register_policy("baymax-clone", factory)
            assert "baymax-clone" in list_policies()
            policy = system.make_policy("baymax-clone")
            assert isinstance(policy, BaymaxPolicy)
        finally:
            unregister_policy("baymax-clone")
        assert "baymax-clone" not in list_policies()

    def test_rejects_bad_registrations(self):
        with pytest.raises(SchedulingError):
            register_policy("", lambda system, guard: None)
        with pytest.raises(SchedulingError):
            register_policy("not-callable", "nope")


class TestEarlyValidation:
    def test_run_config_validates_policy(self):
        with pytest.raises(SchedulingError, match="registered policies"):
            RunConfig(policy="bogus")
        assert RunConfig(policy="hfuse").policy == "hfuse"

    def test_cluster_spec_validates_policy_and_baseline(self):
        with pytest.raises(SchedulingError, match="cluster policy"):
            ClusterSpec(nodes=(NodeSpec("n0"),), policy="bogus")
        with pytest.raises(SchedulingError, match="cluster baseline"):
            ClusterSpec(nodes=(NodeSpec("n0"),), baseline="bogus")

    def test_node_spec_validates_policy(self):
        with pytest.raises(SchedulingError, match="node policy"):
            NodeSpec("n0", policy="tackr")

    def test_autoscale_spec_validates_policy(self):
        with pytest.raises(SchedulingError, match="autoscale policy"):
            AutoscaleSpec(policy="bogus")
        with pytest.raises(ConfigError):
            AutoscaleSpec(epoch_ms=-1)


class TestDeprecationShim:
    def test_schedulingpolicy_alias_warns_once(self):
        import repro.runtime.policies as pkg

        pkg._ALIAS_WARNED = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alias = pkg.SchedulingPolicy
            again = pkg.SchedulingPolicy
        assert alias is SchedulerPolicy and again is SchedulerPolicy
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "SchedulerPolicy" in str(deprecations[0].message)

    def test_runtime_root_reexports_alias(self):
        import repro.runtime as runtime

        assert runtime.SchedulingPolicy is SchedulerPolicy


class TestSplitIsByteIdentical:
    """make_policy (registry path) == direct construction, run for run."""

    def _run(self, system, policy):
        server = ColocationServer(
            system.gpu, oracle=system.oracle, policy=policy,
            config=system.config,
        )
        model = model_by_name("resnet50")
        instances = tuple(
            KernelInstance(system.library.get(n),
                           system.library.get(n).default_grid)
            for n in ("tgemm_l", "relu", "tgemm_l", "bn")
        )
        queries = [
            Query(model, i * 12.0, instances) for i in range(20)
        ]
        apps = [be_app(system, "sgemm"), be_app(system, "mriq")]
        return server.run(queries, apps)

    @pytest.mark.parametrize("name,cls", [
        ("baymax", BaymaxPolicy), ("tacker", TackerPolicy),
    ])
    def test_registry_and_direct_runs_match(self, gpu, name, cls):
        # Fresh systems per arm: served runs mutate predictor state.
        results = []
        for arm in ("registry", "direct"):
            system = TackerSystem(gpu=gpu, config=RunConfig(queries=20))
            model = model_by_name("resnet50")
            for be_name in ("sgemm", "mriq"):
                system.prepare_pair(model, be_app(system, be_name))
            if arm == "registry":
                policy = system.make_policy(name)
            elif cls is TackerPolicy:
                policy = TackerPolicy(
                    system.gpu, system.models, system.qos_ms,
                    system.artifacts,
                )
            else:
                policy = BaymaxPolicy(
                    system.gpu, system.models, system.qos_ms
                )
            results.append(self._run(system, policy))
        registry_run, direct_run = results
        assert registry_run.latencies_ms == direct_run.latencies_ms
        assert registry_run.total_be_work_ms == direct_run.total_be_work_ms
        assert registry_run.n_fused_kernels == direct_run.n_fused_kernels


class TestZooUnderAudit:
    """Each zoo policy serves a run with every invariant checked."""

    @pytest.fixture(autouse=True)
    def audited(self):
        audit.reset()
        audit.enable()
        yield
        audit.reset()

    @pytest.mark.parametrize(
        "name", ["hfuse", "spatial", "gpuos", "multifuse"]
    )
    def test_zoo_policy_run_passes_audit(self, gpu, name):
        system = TackerSystem(gpu=gpu, config=RunConfig(queries=15))
        model = model_by_name("resnet50")
        for be_name in ("sgemm", "mriq"):
            system.prepare_pair(model, be_app(system, be_name))
        policy = system.make_policy(name)
        result = system.run_custom(
            model, ("sgemm", "mriq"), policy, n_queries=15
        )
        assert len(result.latencies_ms) == 15
        assert result.total_be_work_ms > 0
        checks = audit.summary()
        assert checks.get("eq9-reservation", 0) > 0
        assert checks.get("kernel-count-conservation", 0) >= 1

    def test_hfuse_actually_hfuses(self, gpu):
        system = TackerSystem(gpu=gpu, config=RunConfig(queries=10))
        model = model_by_name("resnet50")
        for be_name in ("sgemm", "mriq"):
            system.prepare_pair(model, be_app(system, be_name))
        policy = system.make_policy("hfuse")
        result = system.run_custom(
            model, ("sgemm", "mriq"), policy, n_queries=10
        )
        assert result.n_hfused_kernels > 0

    def test_spatial_server_path(self, gpu):
        """Small-grid kernels under-fill their partitions, so the
        spatial co-run genuinely overlaps and the server's kind=
        "spatial" path executes (saturating kernels never admit: with
        linear SM scaling the balanced split's gain is exactly zero).
        """
        system = TackerSystem(gpu=gpu, config=RunConfig(queries=8))
        model = model_by_name("resnet50")
        small_be = BEApplication("mriq", (
            KernelInstance(system.library.get("mriq"), 6),
        ))
        system.prepare_pair(model, small_be)
        policy = system.make_policy("spatial")
        instances = (
            KernelInstance(system.library.get("tgemm_l"), 4),
            KernelInstance(system.library.get("relu"), 4),
        )
        queries = [
            Query(model, i * 10.0, instances) for i in range(8)
        ]
        server = ColocationServer(
            system.gpu, oracle=system.oracle, policy=policy,
            config=system.config,
        )
        result = server.run(queries, [small_be])
        assert result.n_spatial_kernels > 0
        assert all(q.done for q in queries)


class TestHeterogeneousCluster:
    def test_per_node_policy_overrides(self, gpu):
        spec = ClusterSpec(
            nodes=(
                NodeSpec("n0", be_names=("sgemm",)),
                NodeSpec("n1", be_names=("mriq",), policy="hfuse"),
                NodeSpec("n2", be_names=("fft",), policy="baymax"),
            ),
            lc_names=("resnet50",),
            run=RunConfig(queries=24),
            steal=False,
        )
        result = serve_cluster(spec, gpu="rtx2080ti")
        by_name = {node.name: node for node in result.nodes}
        assert by_name["n0"].policy == "tacker"
        assert by_name["n1"].policy == "hfuse"
        assert by_name["n2"].policy == "baymax"
        assert all(node.baseline == "baymax" for node in result.nodes)
        # n2 ran policy == baseline: both slots are one (deduped) run.
        n2 = by_name["n2"]
        assert n2.tacker.latencies_ms == n2.baymax.latencies_ms
