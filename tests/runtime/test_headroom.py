"""Tests for QoS headroom accounting (Eqs. 7/9)."""

import pytest

from repro.errors import SchedulingError
from repro.kernels.parboil import mriq
from repro.models.zoo import model_by_name
from repro.runtime.headroom import HeadroomTracker
from repro.runtime.query import KernelInstance, Query


def query(arrival, n_kernels=4):
    return Query(
        model_by_name("resnet50"), arrival,
        tuple(KernelInstance(mriq(), 100) for _ in range(n_kernels)),
    )


def tracker(qos=50.0, per_kernel_ms=5.0):
    return HeadroomTracker(qos, lambda inst: per_kernel_ms)


class TestSingleQuery:
    def test_eq7_headroom(self):
        t = tracker()
        q = query(arrival=10.0, n_kernels=4)  # 20 ms predicted
        # At t=15: 50 - 5 elapsed - 20 remaining = 25.
        assert t.headroom_ms(15.0, [q]) == pytest.approx(25.0)

    def test_headroom_shrinks_with_time(self):
        t = tracker()
        q = query(arrival=0.0)
        early = t.headroom_ms(5.0, [q])
        late = t.headroom_ms(15.0, [q])
        assert late == pytest.approx(early - 10.0)

    def test_headroom_grows_as_kernels_finish(self):
        t = tracker()
        q = query(arrival=0.0, n_kernels=4)
        before = t.headroom_ms(10.0, [q])
        q.advance(10.0)
        after = t.headroom_ms(10.0, [q])
        assert after == pytest.approx(before + 5.0)

    def test_can_go_negative(self):
        t = tracker()
        q = query(arrival=0.0, n_kernels=12)  # 60 ms predicted work
        assert t.headroom_ms(0.0, [q]) < 0


class TestMultipleQueries:
    def test_eq9_reserves_earlier_queries(self):
        t = tracker()
        q1 = query(arrival=0.0, n_kernels=4)   # 20 ms
        q2 = query(arrival=5.0, n_kernels=4)   # 20 ms
        # q2's slack: 50 - 5 elapsed - 20 (q1 ahead) - 20 own = 5.
        assert t.headroom_ms(10.0, [q1, q2]) == pytest.approx(5.0)

    def test_binding_constraint_is_minimum(self):
        t = tracker()
        q1 = query(arrival=0.0, n_kernels=1)
        q2 = query(arrival=0.0, n_kernels=9)
        thr = t.headroom_ms(0.0, [q1, q2])
        slack_q1 = 50.0 - 5.0
        slack_q2 = 50.0 - 5.0 - 45.0
        assert thr == pytest.approx(min(slack_q1, slack_q2))

    def test_no_queries_unconstrained(self):
        assert tracker().headroom_ms(123.0, []) == float("inf")


class TestValidation:
    def test_qos_must_be_positive(self):
        with pytest.raises(SchedulingError):
            HeadroomTracker(0.0, lambda inst: 1.0)

    def test_predicted_remaining(self):
        t = tracker()
        q = query(arrival=0.0, n_kernels=3)
        assert t.predicted_remaining_ms(q) == pytest.approx(15.0)
