"""Tests for QoS headroom accounting (Eqs. 7/9)."""

import pytest

from repro.errors import SchedulingError
from repro.kernels.parboil import fft, mriq
from repro.models.zoo import model_by_name
from repro.runtime.headroom import HeadroomTracker
from repro.runtime.query import KernelInstance, Query


def query(arrival, n_kernels=4):
    return Query(
        model_by_name("resnet50"), arrival,
        tuple(KernelInstance(mriq(), 100) for _ in range(n_kernels)),
    )


def tracker(qos=50.0, per_kernel_ms=5.0):
    return HeadroomTracker(qos, lambda inst: per_kernel_ms)


class TestSingleQuery:
    def test_eq7_headroom(self):
        t = tracker()
        q = query(arrival=10.0, n_kernels=4)  # 20 ms predicted
        # At t=15: 50 - 5 elapsed - 20 remaining = 25.
        assert t.headroom_ms(15.0, [q]) == pytest.approx(25.0)

    def test_headroom_shrinks_with_time(self):
        t = tracker()
        q = query(arrival=0.0)
        early = t.headroom_ms(5.0, [q])
        late = t.headroom_ms(15.0, [q])
        assert late == pytest.approx(early - 10.0)

    def test_headroom_grows_as_kernels_finish(self):
        t = tracker()
        q = query(arrival=0.0, n_kernels=4)
        before = t.headroom_ms(10.0, [q])
        q.advance(10.0)
        after = t.headroom_ms(10.0, [q])
        assert after == pytest.approx(before + 5.0)

    def test_can_go_negative(self):
        t = tracker()
        q = query(arrival=0.0, n_kernels=12)  # 60 ms predicted work
        assert t.headroom_ms(0.0, [q]) < 0


class TestMultipleQueries:
    def test_eq9_reserves_earlier_queries(self):
        t = tracker()
        q1 = query(arrival=0.0, n_kernels=4)   # 20 ms
        q2 = query(arrival=5.0, n_kernels=4)   # 20 ms
        # q2's slack: 50 - 5 elapsed - 20 (q1 ahead) - 20 own = 5.
        assert t.headroom_ms(10.0, [q1, q2]) == pytest.approx(5.0)

    def test_binding_constraint_is_minimum(self):
        t = tracker()
        q1 = query(arrival=0.0, n_kernels=1)
        q2 = query(arrival=0.0, n_kernels=9)
        thr = t.headroom_ms(0.0, [q1, q2])
        slack_q1 = 50.0 - 5.0
        slack_q2 = 50.0 - 5.0 - 45.0
        assert thr == pytest.approx(min(slack_q1, slack_q2))

    def test_no_queries_unconstrained(self):
        assert tracker().headroom_ms(123.0, []) == float("inf")


class TestSuffixCacheKey:
    """The cache key must cover the full sequence, not its endpoints."""

    @staticmethod
    def sandwich(middle, arrival=0.0, grid=100):
        # Both variants share model, length, first and last kernel —
        # the exact shape that collided under the old (model, len,
        # first, last) key.
        return Query(
            model_by_name("resnet50"), arrival,
            (
                KernelInstance(mriq(), 100),
                KernelInstance(middle, grid),
                KernelInstance(mriq(), 100),
            ),
        )

    def test_interior_kernel_distinguishes_sequences(self):
        t = HeadroomTracker(
            50.0, lambda inst: 5.0 if inst.name == "mriq" else 9.0
        )
        with_mriq = self.sandwich(mriq())
        with_fft = self.sandwich(fft())
        assert t.predicted_remaining_ms(with_mriq) == pytest.approx(15.0)
        assert t.predicted_remaining_ms(with_fft) == pytest.approx(19.0)

    def test_interior_grid_distinguishes_sequences(self):
        t = HeadroomTracker(50.0, lambda inst: inst.grid / 100.0)
        small = self.sandwich(mriq(), grid=100)
        large = self.sandwich(mriq(), grid=300)
        assert t.predicted_remaining_ms(small) == pytest.approx(3.0)
        assert t.predicted_remaining_ms(large) == pytest.approx(5.0)

    def test_invalidate_rebuilds_suffix_sums(self):
        per_kernel = {"ms": 5.0}
        t = HeadroomTracker(50.0, lambda inst: per_kernel["ms"])
        q = query(arrival=0.0, n_kernels=2)
        assert t.predicted_remaining_ms(q) == pytest.approx(10.0)
        per_kernel["ms"] = 7.0
        # Cached until explicitly invalidated...
        assert t.predicted_remaining_ms(q) == pytest.approx(10.0)
        t.invalidate()
        assert t.predicted_remaining_ms(q) == pytest.approx(14.0)

    def test_model_version_bump_invalidates(self):
        state = {"ms": 5.0, "version": 0}
        t = HeadroomTracker(
            50.0, lambda inst: state["ms"],
            version=lambda: state["version"],
        )
        q = query(arrival=0.0, n_kernels=2)
        assert t.predicted_remaining_ms(q) == pytest.approx(10.0)
        # A model refresh (the online >10%-error retrain path) bumps
        # the version; stale suffix sums must be rebuilt unprompted.
        state["ms"] = 8.0
        state["version"] = 1
        assert t.predicted_remaining_ms(q) == pytest.approx(16.0)

    def test_eq9_remaining_monotone_within_query(self):
        t = tracker()
        q = query(arrival=0.0, n_kernels=4)
        seen = [t.predicted_remaining_ms(q)]
        for step in range(4):
            q.advance(float(step))
            seen.append(t.predicted_remaining_ms(q))
        assert seen == sorted(seen, reverse=True)
        assert seen[-1] == 0.0


class TestValidation:
    def test_qos_must_be_positive(self):
        with pytest.raises(SchedulingError):
            HeadroomTracker(0.0, lambda inst: 1.0)

    def test_predicted_remaining(self):
        t = tracker()
        q = query(arrival=0.0, n_kernels=3)
        assert t.predicted_remaining_ms(q) == pytest.approx(15.0)
