"""Tests for workload generation and peak-load calibration."""

import numpy as np
import pytest

from repro.errors import ConfigError, SchedulingError
from repro.models.zoo import model_by_name
from repro.runtime.workload import (
    BE_INPUT_SCALES,
    PoissonArrivals,
    arrival_gaps,
    be_application,
    calibrate_peak_rate,
    fold_gaps_to_arrivals,
    merge_streams,
    merged_arrival_stream,
    peak_load_qps,
    solo_query_ms,
    standard_be_names,
)


class TestArrivalGaps:
    def test_paced_gaps_bounded(self):
        gaps = arrival_gaps(0.1, 1000, seed=1, process="paced")
        assert np.all(gaps >= 10.0 * 0.7 - 1e-9)
        assert np.all(gaps <= 10.0 * 1.3 + 1e-9)
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.05)

    def test_poisson_gaps_exponential_mean(self):
        gaps = arrival_gaps(0.1, 5000, seed=1, process="poisson")
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.1)

    def test_deterministic_per_seed(self):
        a = arrival_gaps(0.1, 10, seed=3)
        b = arrival_gaps(0.1, 10, seed=3)
        assert np.array_equal(a, b)

    def test_unknown_process(self):
        with pytest.raises(ConfigError):
            arrival_gaps(0.1, 10, seed=1, process="weibull")


class TestPeakCalibration:
    def test_peak_rate_below_serial_capacity(self):
        peak = calibrate_peak_rate(solo_ms=20.0, qos_ms=50.0)
        assert 0 < peak <= 1 / 20.0

    def test_peak_meets_qos_but_barely(self):
        from repro.runtime.workload import _p99_sojourn_ms

        peak = calibrate_peak_rate(solo_ms=20.0, qos_ms=50.0)
        assert _p99_sojourn_ms(peak, 20.0, 7, 4000, "paced") <= 50.0
        assert _p99_sojourn_ms(peak * 1.1, 20.0, 7, 4000, "paced") > 50.0

    def test_poisson_peak_is_much_lower(self):
        paced = calibrate_peak_rate(20.0, 50.0, process="paced")
        poisson = calibrate_peak_rate(20.0, 50.0, process="poisson")
        assert poisson < paced

    def test_solo_beyond_qos_rejected(self):
        with pytest.raises(ConfigError):
            calibrate_peak_rate(solo_ms=60.0, qos_ms=50.0)

    def test_peak_load_qps_guard(self):
        with pytest.raises(ConfigError):
            peak_load_qps(0.0)


class TestPoissonArrivals:
    def test_queries_sorted_and_deterministic(self, library, oracle):
        model = model_by_name("resnet50")
        gen = PoissonArrivals(model, library, oracle, seed=9)
        queries = gen.queries(20)
        arrivals = [q.arrival_ms for q in queries]
        assert arrivals == sorted(arrivals)
        again = PoissonArrivals(model, library, oracle, seed=9).queries(20)
        assert [q.arrival_ms for q in again] == arrivals

    def test_rate_scales_with_load(self, library, oracle):
        model = model_by_name("resnet50")
        high = PoissonArrivals(model, library, oracle, load=0.8)
        low = PoissonArrivals(model, library, oracle, load=0.4)
        assert low.rate_per_ms == pytest.approx(high.rate_per_ms / 2)

    def test_bad_load_rejected(self, library, oracle):
        with pytest.raises(ConfigError):
            PoissonArrivals(
                model_by_name("resnet50"), library, oracle, load=1.5
            )

    def test_solo_matches_helper(self, library, oracle):
        model = model_by_name("resnet50")
        gen = PoissonArrivals(model, library, oracle)
        assert gen.solo_ms == pytest.approx(
            solo_query_ms(model, library, oracle)
        )


class TestMergedArrivalStream:
    def test_zero_rate_scale_yields_no_arrivals(self, library, oracle):
        models = [model_by_name("resnet50"), model_by_name("vgg16")]
        stream = merged_arrival_stream(
            models, library, oracle, count=10, seed=1, rate_scale=0.0
        )
        assert stream == []

    def test_single_query_per_service(self, library, oracle):
        models = [model_by_name("resnet50"), model_by_name("vgg16")]
        stream = merged_arrival_stream(
            models, library, oracle, count=2, seed=1, rate_scale=0.2
        )
        assert len(stream) == 2
        assert {name for _, name in stream} == {"Resnet50", "VGG16"}

    def test_count_below_service_count_rejected(self, library, oracle):
        models = [model_by_name("resnet50"), model_by_name("vgg16")]
        with pytest.raises(SchedulingError):
            merged_arrival_stream(models, library, oracle, count=1, seed=1)
        with pytest.raises(SchedulingError):
            merged_arrival_stream([], library, oracle, count=4, seed=1)

    def test_negative_rate_scale_rejected(self, library, oracle):
        with pytest.raises(ConfigError):
            merged_arrival_stream(
                [model_by_name("resnet50")], library, oracle,
                count=4, seed=1, rate_scale=-0.5,
            )

    def test_merge_ties_broken_by_name_stably(self):
        # Identical timestamps must merge the same way regardless of
        # input ordering — the total order replays rely on.
        a = ("alpha", np.array([1.0, 5.0]))
        b = ("beta", np.array([5.0, 9.0]))
        merged = merge_streams([b, a])
        assert merged == [
            (1.0, "alpha"), (5.0, "alpha"), (5.0, "beta"), (9.0, "beta"),
        ]
        assert merged == merge_streams([a, b])

    def test_fold_applies_gap_filter_before_cumsum(self):
        gaps = np.array([10.0, 10.0, 10.0])
        halved = fold_gaps_to_arrivals(gaps, gap_filter=lambda g: g / 2)
        assert np.array_equal(halved, np.array([5.0, 10.0, 15.0]))
        assert np.array_equal(
            fold_gaps_to_arrivals(gaps), np.array([10.0, 20.0, 30.0])
        )


class TestBEApplications:
    def test_twelve_standard_names(self):
        assert len(standard_be_names()) == 12

    def test_parboil_app(self, library):
        app = be_application("fft", library)
        assert app.sequence[0].name == "fft"
        assert not app.memory_intensive
        assert app.input_scales == BE_INPUT_SCALES

    def test_memory_intensive_flag(self, library):
        assert be_application("lbm", library).memory_intensive

    def test_training_app(self, library):
        app = be_application("Res-T", library)
        assert app.memory_intensive
        assert any(k.kind == "tc" for k in app.sequence)
        assert any(k.name == "weight_update" for k in app.sequence)
