"""Tests for the cluster-level deployment mode (Section IV)."""

import pytest

from repro.errors import SchedulingError
from repro.runtime.cluster import (
    ClusterDispatcher,
    ClusterManager,
    ReplicaState,
    default_cluster_spec,
    routing_strategy,
    serve_cluster,
)
from repro.runtime.runconfig import RunConfig
from repro.runtime.system import TackerSystem


@pytest.fixture(scope="module")
def system(gpu):
    return TackerSystem(gpu=gpu)


def manager(system, threshold=2):
    return ClusterManager(system, occurrence_threshold=threshold)


class TestPlacement:
    def test_node_registration(self, system):
        cluster = manager(system)
        cluster.add_node("gpu0")
        with pytest.raises(SchedulingError):
            cluster.add_node("gpu0")
        with pytest.raises(SchedulingError):
            cluster.node("gpu9")

    def test_occurrence_counting(self, system):
        cluster = manager(system, threshold=3)
        for name in ("gpu0", "gpu1"):
            cluster.add_node(name)
            cluster.place_be(name, "fft")
        assert cluster.occurrences("be", "fft") == 2
        assert not cluster.is_long_running("be", "fft")

    def test_threshold_validation(self, system):
        with pytest.raises(SchedulingError):
            ClusterManager(system, occurrence_threshold=0)


class TestFusionStaging:
    def test_below_threshold_prepares_nothing(self, system):
        cluster = manager(system, threshold=5)
        cluster.add_node("gpu0")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_be("gpu0", "mriq")
        assert cluster.staging_report()["gpu0"] == 0

    def test_long_running_pair_gets_artifacts(self, system):
        cluster = manager(system, threshold=1)
        cluster.add_node("gpu0")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_be("gpu0", "mriq")
        assert cluster.staging_report()["gpu0"] > 0
        libraries = cluster.distributed["gpu0"]
        assert all(lib.endswith(".so") for lib in libraries)
        assert any("mriq" in lib for lib in libraries)

    def test_distribution_follows_be_location(self, system):
        """Artifacts land only on nodes hosting the relevant BE app."""
        cluster = manager(system, threshold=1)
        cluster.add_node("gpu0")
        cluster.add_node("gpu1")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_lc("gpu1", "vgg16")
        cluster.place_be("gpu0", "mriq")
        # gpu1 hosts no BE app, so nothing is shipped there.
        assert cluster.staging_report()["gpu0"] > 0
        assert cluster.staging_report()["gpu1"] == 0

    def test_artifacts_shared_across_nodes(self, system):
        """The same fused library serves every node with the pair."""
        cluster = manager(system, threshold=1)
        cluster.add_node("gpu0")
        cluster.add_node("gpu1")
        for name in ("gpu0", "gpu1"):
            cluster.place_lc(name, "vgg16")
            cluster.place_be(name, "mriq")
        compiled_once = len(cluster.system.compiler)
        assert cluster.distributed["gpu0"] == cluster.distributed["gpu1"]
        # Re-placing does not recompile.
        cluster.place_be("gpu0", "mriq")
        assert len(cluster.system.compiler) == compiled_once

    def test_crossing_threshold_unlocks_other_nodes(self, system):
        """A workload becoming long-running retroactively stages fused
        kernels on every node that already co-hosts the pair."""
        cluster = manager(system, threshold=2)
        cluster.add_node("gpu0")
        cluster.add_node("gpu1")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_be("gpu0", "mriq")
        assert cluster.staging_report()["gpu0"] == 0  # occurrences = 1
        # Second occurrences land on another node entirely...
        cluster.place_lc("gpu1", "vgg16")
        cluster.place_be("gpu1", "mriq")
        # ...and both nodes get the shared libraries.
        assert cluster.staging_report()["gpu0"] > 0
        assert cluster.distributed["gpu0"] == cluster.distributed["gpu1"]


class TestThresholdBoundaries:
    def test_threshold_exactly_met_stages(self, system):
        """Staging fires at occurrences == threshold, not beyond it."""
        cluster = manager(system, threshold=2)
        for name in ("gpu0", "gpu1"):
            cluster.add_node(name)
            cluster.place_lc(name, "vgg16")
            cluster.place_be(name, "mriq")
        assert cluster.occurrences("lc", "vgg16") == 2
        assert cluster.occurrences("be", "mriq") == 2
        assert cluster.is_long_running("be", "mriq")
        assert cluster.staging_report()["gpu0"] > 0
        assert cluster.staging_report()["gpu1"] > 0

    def test_be_crossing_threshold_retroactively_stages(self, system):
        """The BE app reaching the threshold *after* the LC service
        unlocks staging on nodes placed earlier."""
        cluster = manager(system, threshold=2)
        cluster.add_node("gpu0")
        cluster.add_node("gpu1")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_lc("gpu1", "vgg16")   # LC long-running already
        cluster.place_be("gpu0", "mriq")    # BE occurrence 1: no staging
        assert cluster.staging_report()["gpu0"] == 0
        cluster.place_be("gpu1", "mriq")    # BE occurrence 2: both stage
        assert cluster.staging_report()["gpu0"] > 0
        assert cluster.staging_report()["gpu1"] > 0


class TestRoutingStrategies:
    def replicas(self, n=3, qos=50.0):
        return [ReplicaState(index, qos) for index in range(n)]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SchedulingError):
            routing_strategy("random")

    def test_roundrobin_cycles(self):
        strategy = routing_strategy("roundrobin")
        replicas = self.replicas(3)
        chosen = [
            strategy.choose(0.0, 10.0, replicas).index for _ in range(5)
        ]
        assert chosen == [0, 1, 2, 0, 1]

    def test_least_prefers_fewest_outstanding(self):
        replicas = self.replicas(2)
        replicas[0].assign(0.0, 10.0, seq=0)
        chosen = routing_strategy("least").choose(1.0, 10.0, replicas)
        assert chosen.index == 1

    def test_headroom_weighs_reserved_milliseconds(self):
        """Two light in-flight queries reserve less than one heavy one —
        headroom sees milliseconds where least-outstanding sees counts."""
        replicas = self.replicas(2)
        replicas[0].assign(0.0, 5.0, seq=0)
        replicas[0].assign(0.0, 5.0, seq=1)   # 10 ms reserved
        replicas[1].assign(0.0, 25.0, seq=2)  # 25 ms reserved
        assert routing_strategy("least").choose(
            0.0, 10.0, replicas
        ).index == 1
        assert routing_strategy("headroom").choose(
            0.0, 10.0, replicas
        ).index == 0

    def test_new_query_slack_is_tail_join_eq9(self):
        replica = ReplicaState(0, 50.0)
        replica.assign(0.0, 20.0, seq=0)
        assert replica.new_query_slack_ms(0.0, 10.0) == pytest.approx(
            50.0 - 20.0 - 10.0
        )

    def test_reservations_drain_over_time(self):
        replica = ReplicaState(0, 50.0)
        replica.assign(0.0, 20.0, seq=0)
        replica.drain(30.0)   # finished at 20 ms
        assert replica.outstanding() == 0
        assert replica.new_query_slack_ms(30.0, 10.0) == pytest.approx(40.0)


class TestDispatcherPlanning:
    def plan(self, system, routing="headroom", nodes=3, steal=True,
             queries=12, be_every=2):
        spec = default_cluster_spec(
            nodes, routing=routing,
            run=RunConfig(queries=queries), steal=steal, be_every=be_every,
        )
        dispatcher = ClusterDispatcher(spec, system=system)
        return dispatcher.dispatch()

    def test_every_query_routed_exactly_once(self, system):
        plan = self.plan(system)
        routed = [a for node in plan.assignments for a in node]
        assert len(routed) == 12
        assert plan.horizon_ms == pytest.approx(
            max(t for _, t in routed) + plan.spec.run.qos_ms
        )

    def test_dispatch_deterministic_under_fixed_seed(self, system):
        first = self.plan(system)
        second = self.plan(system)
        assert first.assignments == second.assignments
        assert first.steals == second.steals
        assert first.utilization == second.utilization

    def test_beless_nodes_always_steal(self, system):
        plan = self.plan(system)
        # be_every=2 leaves node1 BE-less; it adopts the donor's stream.
        assert plan.stolen[1] != ()
        assert plan.be_names[1] == plan.stolen[1]
        assert all(
            (thief, donor) != (donor, thief) for thief, donor, _ in plan.steals
        )

    def test_no_steal_flag_disables_stealing(self, system):
        plan = self.plan(system, steal=False)
        assert plan.steals == ()
        assert all(s == () for s in plan.stolen)

    def test_hosting_nodes_steal_only_past_gap(self, system):
        spec = default_cluster_spec(3, run=RunConfig(queries=6), be_every=1)
        dispatcher = ClusterDispatcher(spec, system=system)
        # Node0 is the hot donor; node1 trails it beyond the 0.15 gap,
        # node2 sits within it.
        be_names, stolen, steals = dispatcher._plan_steals((0.9, 0.5, 0.85))
        assert stolen[1] != () and stolen[2] == ()
        assert all(donor == "node0" for _, donor, _ in steals)


class TestServeCluster:
    def test_serve_deterministic_and_consistent(self, system):
        spec = default_cluster_spec(
            2, routing="headroom", run=RunConfig(queries=8), be_every=1,
        )
        first = serve_cluster(spec, system=system)
        second = serve_cluster(spec, system=system)
        assert [n.tacker.latencies_ms for n in first.nodes] == [
            n.tacker.latencies_ms for n in second.nodes
        ]
        assert first.fleet_be_work_ms == second.fleet_be_work_ms
        assert first.fleet_be_work_ms == pytest.approx(
            sum(n.tacker.total_be_work_ms for n in first.nodes)
        )
        assert sum(n.n_queries for n in first.nodes) == 8
        assert first.fleet_p99_ms > 0

    def test_fault_plans_reseed_per_node(self, system):
        from repro.runtime.cluster import ClusterSpec, NodeSpec
        from repro.runtime.faults import FaultPlan

        plan = FaultPlan(be_drop=0.5, seed=7)
        spec = ClusterSpec(
            nodes=(
                NodeSpec(name="node0", be_names=("fft",), faults=plan),
                NodeSpec(name="node1", faults=plan),
            ),
            run=RunConfig(queries=4),
        )
        routed = ClusterDispatcher(spec, system=system).dispatch()
        specs = routed.node_run_specs("rtx2080ti")
        # Replicas endure independent but reproducible fault streams.
        assert specs[0].faults.seed == 7
        assert specs[1].faults.seed == 8
