"""Tests for the cluster-level deployment mode (Section IV)."""

import pytest

from repro.errors import SchedulingError
from repro.runtime.cluster import ClusterManager
from repro.runtime.system import TackerSystem


@pytest.fixture(scope="module")
def system(gpu):
    return TackerSystem(gpu=gpu)


def manager(system, threshold=2):
    return ClusterManager(system, occurrence_threshold=threshold)


class TestPlacement:
    def test_node_registration(self, system):
        cluster = manager(system)
        cluster.add_node("gpu0")
        with pytest.raises(SchedulingError):
            cluster.add_node("gpu0")
        with pytest.raises(SchedulingError):
            cluster.node("gpu9")

    def test_occurrence_counting(self, system):
        cluster = manager(system, threshold=3)
        for name in ("gpu0", "gpu1"):
            cluster.add_node(name)
            cluster.place_be(name, "fft")
        assert cluster.occurrences("be", "fft") == 2
        assert not cluster.is_long_running("be", "fft")

    def test_threshold_validation(self, system):
        with pytest.raises(SchedulingError):
            ClusterManager(system, occurrence_threshold=0)


class TestFusionStaging:
    def test_below_threshold_prepares_nothing(self, system):
        cluster = manager(system, threshold=5)
        cluster.add_node("gpu0")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_be("gpu0", "mriq")
        assert cluster.staging_report()["gpu0"] == 0

    def test_long_running_pair_gets_artifacts(self, system):
        cluster = manager(system, threshold=1)
        cluster.add_node("gpu0")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_be("gpu0", "mriq")
        assert cluster.staging_report()["gpu0"] > 0
        libraries = cluster.distributed["gpu0"]
        assert all(lib.endswith(".so") for lib in libraries)
        assert any("mriq" in lib for lib in libraries)

    def test_distribution_follows_be_location(self, system):
        """Artifacts land only on nodes hosting the relevant BE app."""
        cluster = manager(system, threshold=1)
        cluster.add_node("gpu0")
        cluster.add_node("gpu1")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_lc("gpu1", "vgg16")
        cluster.place_be("gpu0", "mriq")
        # gpu1 hosts no BE app, so nothing is shipped there.
        assert cluster.staging_report()["gpu0"] > 0
        assert cluster.staging_report()["gpu1"] == 0

    def test_artifacts_shared_across_nodes(self, system):
        """The same fused library serves every node with the pair."""
        cluster = manager(system, threshold=1)
        cluster.add_node("gpu0")
        cluster.add_node("gpu1")
        for name in ("gpu0", "gpu1"):
            cluster.place_lc(name, "vgg16")
            cluster.place_be(name, "mriq")
        compiled_once = len(cluster.system.compiler)
        assert cluster.distributed["gpu0"] == cluster.distributed["gpu1"]
        # Re-placing does not recompile.
        cluster.place_be("gpu0", "mriq")
        assert len(cluster.system.compiler) == compiled_once

    def test_crossing_threshold_unlocks_other_nodes(self, system):
        """A workload becoming long-running retroactively stages fused
        kernels on every node that already co-hosts the pair."""
        cluster = manager(system, threshold=2)
        cluster.add_node("gpu0")
        cluster.add_node("gpu1")
        cluster.place_lc("gpu0", "vgg16")
        cluster.place_be("gpu0", "mriq")
        assert cluster.staging_report()["gpu0"] == 0  # occurrences = 1
        # Second occurrences land on another node entirely...
        cluster.place_lc("gpu1", "vgg16")
        cluster.place_be("gpu1", "mriq")
        # ...and both nodes get the shared libraries.
        assert cluster.staging_report()["gpu0"] > 0
        assert cluster.distributed["gpu0"] == cluster.distributed["gpu1"]
