"""Tests for the runtime invariant auditor (repro.audit)."""

from __future__ import annotations

import os
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro import audit
from repro.errors import AuditViolation
from repro.experiments.common import parallel_map
from repro.gpusim import fastpath
from repro.gpusim.gpu import run_blocks
from repro.gpusim.trace import Timeline
from repro.kernels.parboil import mriq
from repro.runtime.policies import GuardConfig, MispredictGuard
from repro.runtime.server import ColocationServer, ServerResult
from repro.runtime.system import TackerSystem


@pytest.fixture(autouse=True)
def clean_audit():
    """The audit switch and counters are process-global; isolate tests."""
    audit.reset()
    yield
    audit.reset()


class TestCore:
    def test_off_by_default(self):
        for env in audit.AUDIT_ENVS:
            assert not os.environ.get(env), (
                f"{env} set in the test environment; audit tests assume "
                "environment-driven activation is off"
            )
        assert not audit.active()

    def test_enable_disable_reset(self):
        audit.enable()
        assert audit.active()
        audit.disable()
        assert not audit.active()
        audit.reset()
        assert not audit.active()

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert audit.active()
        monkeypatch.setenv("REPRO_AUDIT", "0")
        assert not audit.active()
        # A programmatic disable overrides the environment.
        monkeypatch.setenv("REPRO_AUDIT", "1")
        audit.disable()
        assert not audit.active()

    def test_ensure_counts_and_passes(self):
        audit.ensure(True, "some-invariant", "never fails")
        audit.ensure(True, "some-invariant", "never fails")
        assert audit.summary() == {"some-invariant": 2}

    def test_violation_carries_context(self):
        with pytest.raises(AuditViolation) as info:
            audit.ensure(
                False, "demo-invariant", "things diverged",
                kernel="mriq", start_ms=3.0,
            )
        err = info.value
        assert err.invariant == "demo-invariant"
        assert err.context == {"kernel": "mriq", "start_ms": 3.0}
        assert "demo-invariant" in str(err)
        assert "mriq" in str(err)

    def test_engine_sampling_respects_config(self):
        audit.configure(audit.AuditConfig(
            differential_every=2, differential_max=3,
        ))
        decisions = [audit.take_engine_sample() for _ in range(10)]
        assert decisions == [
            True, False, True, False, True, False,
            False, False, False, False,
        ]


def make_auditor(remaining=None, thr=1000.0, version=0, guard=None):
    """A ServerAuditor over a stub policy."""
    remaining = remaining if remaining is not None else {}
    policy = SimpleNamespace(
        models=SimpleNamespace(version=version),
        headroom=SimpleNamespace(
            predicted_remaining_ms=lambda q: remaining[q.qid],
        ),
        current_thr_ms=lambda now, active: thr,
        guard=guard,
    )
    return audit.ServerAuditor(policy, qos_ms=50.0, horizon_ms=1e9), policy


def empty_result(**overrides):
    fields = dict(
        qos_ms=50.0, horizon_ms=1e9, end_ms=0.0, latencies_ms=[],
        be_work_ms={}, tc_timeline=Timeline(), cd_timeline=Timeline(),
    )
    fields.update(overrides)
    return ServerResult(**fields)


class TestServerAuditor:
    def test_overlapping_kernels_rejected(self):
        auditor, _ = make_auditor()
        auditor.on_kernel(0.0, 10.0, "lc", "a")
        with pytest.raises(AuditViolation, match="busy-timeline-monotone"):
            auditor.on_kernel(9.0, 12.0, "lc", "b")

    def test_backwards_kernel_rejected(self):
        auditor, _ = make_auditor()
        with pytest.raises(AuditViolation, match="busy-timeline-monotone"):
            auditor.on_kernel(10.0, 5.0, "lc", "a")

    def test_eq9_negative_reservation_rejected(self):
        auditor, _ = make_auditor(remaining={7: -1.0})
        query = SimpleNamespace(qid=7)
        action = SimpleNamespace(kind="lc")
        with pytest.raises(AuditViolation, match="eq9-reservation"):
            auditor.on_action(0.0, action, [query])

    def test_eq9_growing_reservation_rejected(self):
        remaining = {7: 20.0}
        auditor, _ = make_auditor(remaining=remaining)
        query = SimpleNamespace(qid=7)
        action = SimpleNamespace(kind="lc")
        auditor.on_action(0.0, action, [query])
        remaining[7] = 25.0  # a stale/colliding cache produced this
        with pytest.raises(AuditViolation, match="eq9-reservation"):
            auditor.on_action(1.0, action, [query])

    def test_model_refresh_restarts_eq9_history(self):
        remaining = {7: 20.0}
        auditor, policy = make_auditor(remaining=remaining)
        query = SimpleNamespace(qid=7)
        action = SimpleNamespace(kind="lc")
        auditor.on_action(0.0, action, [query])
        remaining[7] = 25.0
        policy.models.version = 1  # a legal refit moved the prediction
        auditor.on_action(1.0, action, [query])  # must not raise

    def test_eq8_sequential_faster_rejected(self):
        auditor, _ = make_auditor()
        action = SimpleNamespace(
            kind="fused", fused=SimpleNamespace(name="f"),
            predicted_lc_ms=5.0, predicted_be_ms=3.0,
            predicted_fused_ms=9.0,
        )
        with pytest.raises(AuditViolation, match="eq8-at-decision"):
            auditor.on_action(0.0, action, [])

    def test_eq8_thr_overrun_rejected(self):
        auditor, _ = make_auditor(thr=1.0)
        action = SimpleNamespace(
            kind="fused", fused=SimpleNamespace(name="f"),
            predicted_lc_ms=5.0, predicted_be_ms=3.0,
            predicted_fused_ms=7.0,  # extra LC 2.0 > thr 1.0
        )
        with pytest.raises(AuditViolation, match="eq8-at-decision"):
            auditor.on_action(0.0, action, [])

    def test_be_work_conservation(self):
        auditor, _ = make_auditor()
        auditor.on_be_retired("fft", 4.0, end_ms=10.0)
        auditor.on_be_retired("fft", 4.0, end_ms=20.0)
        good = empty_result(be_work_ms={"fft": 8.0}, n_be_kernels=0)
        auditor.on_run_complete(good)
        with pytest.raises(AuditViolation, match="be-work-conservation"):
            auditor.on_run_complete(
                empty_result(be_work_ms={"fft": 9.0})
            )

    def test_be_work_outside_horizon_not_credited(self):
        auditor, _ = make_auditor()
        auditor.horizon_ms = 15.0
        auditor.on_be_retired("fft", 4.0, end_ms=10.0)
        auditor.on_be_retired("fft", 4.0, end_ms=20.0)  # past horizon
        auditor.on_run_complete(empty_result(be_work_ms={"fft": 4.0}))

    def test_kernel_count_conservation(self):
        auditor, _ = make_auditor()
        auditor.on_kernel(0.0, 1.0, "lc", "a")
        auditor.on_kernel(1.0, 2.0, "be", "b")
        auditor.on_run_complete(
            empty_result(n_lc_kernels=1, n_be_kernels=1, end_ms=2.0)
        )
        with pytest.raises(AuditViolation, match="kernel-count"):
            auditor.on_run_complete(
                empty_result(n_lc_kernels=1, end_ms=2.0)
            )


class TestGuardLadderAudit:
    @staticmethod
    def auditor_with_guard():
        guard = MispredictGuard(GuardConfig())
        auditor, _ = make_auditor(guard=guard)
        return auditor, guard

    def test_legal_transitions_pass(self):
        auditor, guard = self.auditor_with_guard()
        cfg = guard.config
        guard.transitions = [(1, "fuse", "reorder"), (9, "reorder", "fuse")]
        guard.transition_risks = [
            cfg.reorder_risk + 0.01,
            cfg.reorder_risk * cfg.recover_ratio - 0.01,
        ]
        auditor.on_run_complete(empty_result())

    def test_skipped_rung_rejected(self):
        auditor, guard = self.auditor_with_guard()
        guard.transitions = [(1, "fuse", "exclusive")]
        guard.transition_risks = [0.5]
        with pytest.raises(AuditViolation, match="guard-ladder"):
            auditor.on_run_complete(empty_result())

    def test_hysteresis_violation_rejected(self):
        auditor, guard = self.auditor_with_guard()
        cfg = guard.config
        # Recovery fired while the risk was still inside the
        # hysteresis band (>= rail * recover_ratio): mode flapping.
        guard.transitions = [(5, "reorder", "fuse")]
        guard.transition_risks = [cfg.reorder_risk * cfg.recover_ratio + 0.01]
        with pytest.raises(AuditViolation, match="guard-ladder"):
            auditor.on_run_complete(empty_result())

    def test_real_guard_run_respects_ladder(self):
        guard = MispredictGuard(GuardConfig())
        auditor, _ = make_auditor(guard=guard)
        # Drive the real guard through degradation and recovery.
        for _ in range(60):
            guard.note_query(latency_ms=60.0, qos_ms=50.0)  # violations
        for _ in range(200):
            guard.note_query(latency_ms=10.0, qos_ms=50.0)  # healthy
        assert len(guard.transitions) >= 2
        auditor.on_run_complete(empty_result())


class TestEndToEnd:
    def test_fig14_pair_runs_clean_under_audit(self):
        audit.enable()
        system = TackerSystem(audit=True)
        outcome = system.run_pair("resnet50", "fft", n_queries=5)
        assert outcome.tacker.n_fused_kernels >= 0  # run completed
        checks = audit.summary()
        assert checks.get("eq9-reservation", 0) > 0
        assert checks.get("busy-timeline-monotone", 0) > 0
        assert checks.get("be-work-conservation", 0) > 0

    def test_corrupted_timeline_fails_audit(self, monkeypatch):
        audit.enable()
        original = ColocationServer._run_lc

        def corrupted(self, action, now, active, result):
            # Report the LC kernel as finishing earlier than it did:
            # the next launch then overlaps it on the timeline.
            return original(self, action, now, active, result) - 0.05

        monkeypatch.setattr(ColocationServer, "_run_lc", corrupted)
        system = TackerSystem(audit=True)
        with pytest.raises(AuditViolation, match="busy-timeline-monotone"):
            system.run_pair("resnet50", "fft", n_queries=5)

    def test_audit_flag_overrides_global_switch(self):
        # audit never enabled globally; the system-level flag suffices
        system = TackerSystem(audit=True)
        system.run_pair("resnet50", "fft", n_queries=3)
        assert sum(audit.summary().values()) > 0


class TestEngineDifferential:
    def test_sampled_fastpath_reruns_match_engine(self, gpu):
        audit.enable()
        audit.configure(audit.AuditConfig(differential_every=1))
        if not fastpath.enabled():
            pytest.skip("fast path disabled via REPRO_FASTPATH")
        launch = mriq().launch()
        blocks = [dict(launch.block_template)]
        from repro.gpusim.sm import BlockSpec

        run_blocks(gpu, [BlockSpec(g) for g in blocks])
        assert audit.summary().get("engine-equivalence", 0) > 0

    def test_divergent_fastpath_detected(self, monkeypatch, gpu):
        audit.enable()
        audit.configure(audit.AuditConfig(differential_every=1))
        if not fastpath.enabled():
            pytest.skip("fast path disabled via REPRO_FASTPATH")
        original = fastpath.run_blocks

        def skewed(sm, bandwidth, blocks):
            result = original(sm, bandwidth, blocks)
            return replace(result, finish_time=result.finish_time * 1.01)

        monkeypatch.setattr(fastpath, "run_blocks", skewed)
        launch = mriq().launch()
        from repro.gpusim.sm import BlockSpec

        with pytest.raises(AuditViolation, match="engine-equivalence"):
            run_blocks(gpu, [BlockSpec(dict(launch.block_template))])


def _square(x):
    return x * x


def _worker_pid(x):
    return (x, os.getpid())


class TestParallelDifferential:
    def test_deterministic_fn_passes(self):
        audit.enable()
        assert parallel_map(_square, [1, 2, 3], workers=2) == [1, 4, 9]
        assert audit.summary().get("parallel-serial-equivalence", 0) > 0

    def test_worker_dependent_fn_detected(self):
        audit.enable()
        with pytest.raises(AuditViolation, match="parallel-serial"):
            parallel_map(_worker_pid, [1, 2], workers=2)
