"""Tests for the duration oracle."""

import dataclasses

import pytest

from repro.fusion.ptb import transform
from repro.fusion.search import FusionSearch
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import fft, mriq
from repro.runtime.oracle import CACHE_ENV, DurationOracle, OracleStore


@pytest.fixture(scope="module")
def fused_kernel(gpu):
    tc = transform(canonical_gemms()["tgemm_l"], gpu)
    cd = transform(fft(), gpu)
    return FusionSearch(gpu).search(tc, cd).best.fused


class TestSoloCache:
    def test_memoized(self, gpu):
        oracle = DurationOracle(gpu)
        kernel = mriq()
        first = oracle.solo_ms(kernel)
        misses = oracle.misses
        second = oracle.solo_ms(kernel, kernel.default_grid)
        assert second == first
        assert oracle.misses == misses

    def test_distinct_grids_distinct_entries(self, gpu):
        oracle = DurationOracle(gpu)
        kernel = mriq()
        a = oracle.solo_ms(kernel, 1000)
        b = oracle.solo_ms(kernel, 4000)
        assert b > a
        assert oracle.misses == 2


class TestFusedCache:
    def test_memoized(self, gpu, fused_kernel):
        oracle = DurationOracle(gpu)
        first = oracle.fused(fused_kernel, 1000, 2000)
        misses = oracle.misses
        second = oracle.fused(fused_kernel, 1000, 2000)
        assert second is first
        assert oracle.misses == misses

    def test_fused_ms_consistent(self, gpu, fused_kernel):
        oracle = DurationOracle(gpu)
        result = oracle.fused(fused_kernel, 1000, 2000)
        assert oracle.fused_ms(fused_kernel, 1000, 2000) == pytest.approx(
            gpu.cycles_to_ms(result.duration_cycles)
        )

    def test_fused_beats_serial_for_good_pair(self, gpu, fused_kernel):
        oracle = DurationOracle(gpu)
        tc_grid = fused_kernel.tc.ir.default_grid
        cd_grid = fused_kernel.cd.ir.default_grid
        result = oracle.fused(fused_kernel, tc_grid, cd_grid)
        assert result.duration_cycles < (
            result.solo_a_cycles + result.solo_b_cycles
        )


class TestCorunPolicyCache:
    def test_memoized(self, gpu):
        from repro.gpusim.gpu import corun_spatial
        oracle = DurationOracle(gpu)
        a = mriq().launch(1000)
        b = fft().launch(800)
        first = oracle.corun_policy("spatial", a, b)
        misses = oracle.misses
        second = oracle.corun_policy("spatial", a, b)
        assert second is first
        assert oracle.misses == misses
        # The memo answers with exactly what the policy computes.
        direct = corun_spatial(a, b, gpu)
        assert first.duration_cycles == direct.duration_cycles
        assert first.overlap == direct.overlap

    def test_policies_do_not_alias(self, gpu):
        oracle = DurationOracle(gpu)
        a = transform(mriq(), gpu).launch()
        b = transform(fft(), gpu).launch()
        serial = oracle.corun_policy("serial", a, b)
        concurrent = oracle.corun_policy("concurrent", a, b)
        assert serial.policy == "serial"
        assert concurrent.policy == "concurrent"
        assert oracle.misses == 2

    def test_grid_share_changes_the_key(self, gpu):
        oracle = DurationOracle(gpu)
        a = mriq().launch(1000)
        oracle.corun_policy("spatial", a, fft().launch(800))
        oracle.corun_policy("spatial", a, fft().launch(1600))
        assert oracle.misses == 2

    def test_unknown_policy_rejected(self, gpu):
        oracle = DurationOracle(gpu)
        with pytest.raises(KeyError, match="unknown co-run policy"):
            oracle.corun_policy("mps", mriq().launch(), fft().launch())

    def test_round_trip(self, gpu, tmp_path):
        store = OracleStore.for_gpu(gpu, directory=tmp_path)
        oracle = DurationOracle(gpu, store=store)
        a = transform(mriq(), gpu).launch()
        b = transform(fft(), gpu).launch()
        result = oracle.corun_policy("concurrent", a, b)
        assert oracle.misses == 1
        oracle.flush()

        # A fresh process answers from disk, policy label restored.
        oracle2 = DurationOracle(
            gpu, store=OracleStore.for_gpu(gpu, directory=tmp_path)
        )
        again = oracle2.corun_policy("concurrent", a, b)
        assert oracle2.misses == 0
        assert oracle2.persistent_hits == 1
        assert again.policy == "concurrent"
        assert again.duration_cycles == result.duration_cycles
        assert again.solo_a_cycles == result.solo_a_cycles
        assert again.solo_b_cycles == result.solo_b_cycles
        assert again.finish_a_cycles == result.finish_a_cycles
        assert again.finish_b_cycles == result.finish_b_cycles
        assert again.overlap == result.overlap


class TestPersistence:
    def test_round_trip(self, gpu, tmp_path):
        store = OracleStore.for_gpu(gpu, directory=tmp_path)
        oracle = DurationOracle(gpu, store=store)
        kernel = mriq()
        cycles = oracle.solo_cycles(kernel)
        assert oracle.misses == 1
        oracle.flush()
        assert store.path.exists()

        # A fresh process (fresh store + oracle) answers from disk.
        reloaded = OracleStore.for_gpu(gpu, directory=tmp_path)
        assert reloaded.path == store.path
        assert len(reloaded) == 1
        oracle2 = DurationOracle(gpu, store=reloaded)
        assert oracle2.solo_cycles(kernel) == cycles
        assert oracle2.misses == 0
        assert oracle2.persistent_hits == 1

    def test_fused_round_trip(self, gpu, tmp_path, fused_kernel):
        store = OracleStore.for_gpu(gpu, directory=tmp_path)
        oracle = DurationOracle(gpu, store=store)
        result = oracle.fused(fused_kernel, 1000, 2000)
        oracle.flush()

        oracle2 = DurationOracle(
            gpu, store=OracleStore.for_gpu(gpu, directory=tmp_path)
        )
        again = oracle2.fused(fused_kernel, 1000, 2000)
        assert again.duration_cycles == result.duration_cycles
        assert again.solo_a_cycles == result.solo_a_cycles
        assert again.finish_b_cycles == result.finish_b_cycles
        assert oracle2.persistent_hits == 1
        assert oracle2.misses == 0

    def test_gpu_config_change_invalidates(self, gpu, tmp_path):
        store = OracleStore.for_gpu(gpu, directory=tmp_path)
        oracle = DurationOracle(gpu, store=store)
        oracle.solo_cycles(mriq())
        oracle.flush()

        other = dataclasses.replace(gpu, clock_ghz=gpu.clock_ghz * 2)
        other_store = OracleStore.for_gpu(other, directory=tmp_path)
        # A different GPU config fingerprints to a different file, so
        # stale durations can never leak across configs.
        assert other_store.path != store.path
        assert len(other_store) == 0
        oracle2 = DurationOracle(other, store=other_store)
        oracle2.solo_cycles(mriq())
        assert oracle2.misses == 1
        assert oracle2.persistent_hits == 0
        oracle2.flush()

    def test_corrupted_file_falls_back_to_simulation(self, gpu, tmp_path):
        store = OracleStore.for_gpu(gpu, directory=tmp_path)
        oracle = DurationOracle(gpu, store=store)
        cycles = oracle.solo_cycles(mriq())
        oracle.flush()

        store.path.write_text("{this is not json")
        fresh = OracleStore(store.path)
        assert len(fresh) == 0
        oracle2 = DurationOracle(gpu, store=fresh)
        assert oracle2.solo_cycles(mriq()) == cycles
        assert oracle2.misses == 1  # re-simulated, same answer
        oracle2.flush()

        # The rewrite leaves a healthy store behind.
        healed = OracleStore(store.path)
        assert len(healed) == 1

    def test_stale_schema_ignored(self, gpu, tmp_path):
        store = OracleStore.for_gpu(gpu, directory=tmp_path)
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text(
            '{"schema": -1, "solo": {"x": 1.0}, "fused": {}}'
        )
        assert len(OracleStore(store.path)) == 0

    def test_env_kill_switch(self, gpu, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "0")
        assert OracleStore.for_gpu(gpu, directory=tmp_path) is None
