"""Tests for the duration oracle."""

import pytest

from repro.fusion.ptb import transform
from repro.fusion.search import FusionSearch
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import fft, mriq
from repro.runtime.oracle import DurationOracle


@pytest.fixture(scope="module")
def fused_kernel(gpu):
    tc = transform(canonical_gemms()["tgemm_l"], gpu)
    cd = transform(fft(), gpu)
    return FusionSearch(gpu).search(tc, cd).best.fused


class TestSoloCache:
    def test_memoized(self, gpu):
        oracle = DurationOracle(gpu)
        kernel = mriq()
        first = oracle.solo_ms(kernel)
        misses = oracle.misses
        second = oracle.solo_ms(kernel, kernel.default_grid)
        assert second == first
        assert oracle.misses == misses

    def test_distinct_grids_distinct_entries(self, gpu):
        oracle = DurationOracle(gpu)
        kernel = mriq()
        a = oracle.solo_ms(kernel, 1000)
        b = oracle.solo_ms(kernel, 4000)
        assert b > a
        assert oracle.misses == 2


class TestFusedCache:
    def test_memoized(self, gpu, fused_kernel):
        oracle = DurationOracle(gpu)
        first = oracle.fused(fused_kernel, 1000, 2000)
        misses = oracle.misses
        second = oracle.fused(fused_kernel, 1000, 2000)
        assert second is first
        assert oracle.misses == misses

    def test_fused_ms_consistent(self, gpu, fused_kernel):
        oracle = DurationOracle(gpu)
        result = oracle.fused(fused_kernel, 1000, 2000)
        assert oracle.fused_ms(fused_kernel, 1000, 2000) == pytest.approx(
            gpu.cycles_to_ms(result.duration_cycles)
        )

    def test_fused_beats_serial_for_good_pair(self, gpu, fused_kernel):
        oracle = DurationOracle(gpu)
        tc_grid = fused_kernel.tc.ir.default_grid
        cd_grid = fused_kernel.cd.ir.default_grid
        result = oracle.fused(fused_kernel, tc_grid, cd_grid)
        assert result.duration_cycles < (
            result.solo_a_cycles + result.solo_b_cycles
        )
