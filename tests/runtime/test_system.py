"""End-to-end tests for the TackerSystem glue."""

import pytest

from repro.errors import SchedulingError
from repro.models.zoo import model_by_name
from repro.runtime.system import TackerSystem
from repro.runtime.workload import be_application


@pytest.fixture(scope="module")
def system(gpu):
    return TackerSystem(gpu=gpu)


class TestOfflinePreparation:
    def test_ptb_cached(self, system):
        first = system.ptb("fft")
        assert system.ptb("fft") is first

    def test_prepare_fusion_caches_decision(self, system):
        fused = system.prepare_fusion("tgemm_l", "mriq")
        assert fused is not None
        again = system.prepare_fusion("tgemm_l", "mriq")
        assert again is fused
        assert ("tgemm_l", "mriq") in system.artifacts

    def test_candidate_pairs_cover_both_directions(self, system):
        model = model_by_name("resnet50")
        app = be_application("Res-T", system.library)
        pairs = system._candidate_pairs(model, app)
        # LC TC x BE CD.
        assert any(t.startswith("tgemm") and c == "weight_update"
                   for t, c in pairs)
        # BE TC x LC CD (reverse fusion).
        assert any(c in ("relu", "bn", "relu_s", "bn_s")
                   for _, c in pairs)

    def test_unfusable_tc_kernels_excluded(self, system):
        model = model_by_name("resnet50")
        app = be_application("fft", system.library)
        pairs = system._candidate_pairs(model, app)
        fusable_tc = {
            k.kernel for k in model.kernels if k.is_tc and k.fusable
        }
        assert {t for t, _ in pairs} == fusable_tc


class TestRunPair:
    def test_unknown_policy_rejected(self, system):
        with pytest.raises(SchedulingError):
            system._make_policy("laius")

    def test_small_pair_run(self, system):
        outcome = system.run_pair("resnet50", "fft", n_queries=15)
        assert outcome.lc_name == "Resnet50"
        assert outcome.be_name == "fft"
        # Same arrival trace for both policies.
        assert outcome.tacker.horizon_ms == outcome.baymax.horizon_ms
        assert len(outcome.tacker.latencies_ms) == 15
        # Tacker fuses; Baymax never does.
        assert outcome.tacker.n_fused_kernels > 0
        assert outcome.baymax.n_fused_kernels == 0
        # Fusion can only help BE throughput.
        assert outcome.improvement > 0
        assert outcome.qos_satisfied


class TestRunMulti:
    def test_merged_services_hold_qos(self, system):
        result = system.run_multi(
            ("vgg16", "densenet"), ("mriq",),
            n_queries=12, load_split=(0.12, 0.12),
        )
        by_model = result.p99_by_model()
        assert set(by_model) == {"VGG16", "Densenet"}
        assert len(result.latencies_ms) == 24
        assert all(p <= system.qos_ms for p in by_model.values())

    def test_default_split_is_equal(self, system):
        result = system.run_multi(
            ("vgg16", "densenet"), ("mriq",), n_queries=6
        )
        assert len(result.latencies_ms) == 12

    def test_bad_split_rejected(self, system):
        with pytest.raises(SchedulingError):
            system.run_multi(("vgg16",), ("mriq",), n_queries=4,
                             load_split=(0.5, 0.5))
        with pytest.raises(SchedulingError):
            system.run_multi((), ("mriq",), n_queries=4)

    def test_per_model_latencies_partition_total(self, system):
        result = system.run_multi(
            ("vgg16", "densenet"), ("mriq",),
            n_queries=8, load_split=(0.15, 0.15),
        )
        total = sum(len(v) for v in result.latencies_by_model.values())
        assert total == len(result.latencies_ms)


class TestModelPersistence:
    def test_save_load_through_system(self, system, tmp_path):
        system.prepare_fusion("tgemm_l", "mriq")
        path = system.save_models(str(tmp_path / "models.json"))
        fresh = TackerSystem(gpu=system.gpu)
        fresh.artifacts.update(system.artifacts)
        restored = fresh.load_models(path)
        assert restored > 0
