"""Tests for fault injection and the mispredict guard rails."""

import numpy as np
import pytest

from repro.errors import ConfigError, PredictionError
from repro.gpusim.trace import Timeline
from repro.models.zoo import model_by_name
from repro.predictor.online import PredictionErrorTracker
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    NodeFault,
    NodeFaultPlan,
    make_injector,
)
from repro.runtime.policies import (
    Action,
    BaymaxPolicy,
    GuardConfig,
    MispredictGuard,
    TackerPolicy,
)
from repro.runtime.query import BEApplication, KernelInstance, Query
from repro.runtime.server import ColocationServer, ServerResult
from repro.runtime.system import TackerSystem


@pytest.fixture(scope="module")
def system(gpu):
    sys_ = TackerSystem(gpu=gpu)
    sys_.prepare_fusion("tgemm_l", "fft")
    return sys_


def make_queries(system, count, gap_ms=30.0,
                 kernels=("tgemm_l", "relu", "tgemm_l", "bn")):
    instances = tuple(
        KernelInstance(system.library.get(n),
                       system.library.get(n).default_grid)
        for n in kernels
    )
    return [
        Query(model_by_name("resnet50"), i * gap_ms, instances)
        for i in range(count)
    ]


def be_app(system, name="fft"):
    kernel = system.library.get(name)
    return BEApplication(
        name, (KernelInstance(kernel, kernel.default_grid),)
    )


def empty_result(qos_ms=50.0):
    return ServerResult(
        qos_ms=qos_ms, horizon_ms=1e9, end_ms=0.0, latencies_ms=[],
        be_work_ms={"fft": 0.0},
        tc_timeline=Timeline(), cd_timeline=Timeline(),
    )


class TestFaultPlan:
    def test_default_plan_is_clean(self):
        plan = FaultPlan()
        assert not plan.any_faults
        assert make_injector(plan) is None
        assert make_injector(None) is None

    def test_any_faults_detects_each_channel(self):
        for kwargs in (
            {"predictor_noise": 0.1}, {"predictor_bias": 0.9},
            {"stale_model": 0.1}, {"be_delay": 0.1},
            {"be_drop": 0.1}, {"burst": 0.1},
        ):
            assert FaultPlan(**kwargs).any_faults, kwargs

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(be_drop=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(predictor_noise=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(predictor_bias=0.0)
        with pytest.raises(ConfigError):
            FaultPlan(be_delay_factor=0.5)
        with pytest.raises(ConfigError):
            FaultPlan(burst_size=1)

    def test_scaled_zero_is_clean(self):
        plan = FaultPlan(
            predictor_noise=0.3, predictor_bias=0.8, stale_model=0.2,
            be_delay=0.2, be_drop=0.1, burst=0.1,
        )
        assert not plan.scaled(0.0).any_faults

    def test_scaled_math(self):
        plan = FaultPlan(predictor_noise=0.2, predictor_bias=0.9,
                         be_drop=0.6)
        doubled = plan.scaled(2.0)
        assert doubled.predictor_noise == pytest.approx(0.4)
        assert doubled.predictor_bias == pytest.approx(0.8)
        # probabilities clamp at 1
        assert doubled.be_drop == 1.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigError):
            FaultPlan().scaled(-1.0)

    def test_parse_aliases(self):
        plan = FaultPlan.parse(
            "noise=0.3, bias=0.9, stale=0.1, delay=0.2, "
            "delay_factor=3, drop=0.05, burst=0.1, burst_size=3, seed=7"
        )
        assert plan.predictor_noise == 0.3
        assert plan.predictor_bias == 0.9
        assert plan.stale_model == 0.1
        assert plan.be_delay == 0.2
        assert plan.be_delay_factor == 3.0
        assert plan.be_drop == 0.05
        assert plan.burst == 0.1
        assert plan.burst_size == 3
        assert plan.seed == 7

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("noise")
        with pytest.raises(ConfigError):
            FaultPlan.parse("bogus_knob=1")
        with pytest.raises(ConfigError):
            FaultPlan.parse("noise=abc")


class TestFaultInjector:
    def test_deterministic_across_injectors(self):
        plan = FaultPlan(predictor_noise=0.3, stale_model=0.5,
                         be_delay=0.3, be_drop=0.2, burst=0.3)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for name in ("k1", "k2", "k1"):
            assert a.perturb_prediction(name, 10.0) == \
                b.perturb_prediction(name, 10.0)
        for _ in range(20):
            assert a.be_outcome(5.0) == b.be_outcome(5.0)
        gaps = np.full(50, 10.0)
        assert np.array_equal(a.perturb_gaps(gaps), b.perturb_gaps(gaps))
        assert a.counters() == b.counters()

    def test_bias_is_systematic(self):
        inj = FaultInjector(FaultPlan(predictor_bias=0.5))
        assert inj.perturb_prediction("k", 10.0) == pytest.approx(5.0)
        assert inj.predictions_perturbed == 1

    def test_stale_multiplier_frozen_per_kernel(self):
        inj = FaultInjector(FaultPlan(stale_model=1.0))
        first = inj.perturb_prediction("k", 10.0)
        assert first != 10.0  # stale offset applied
        assert inj.perturb_prediction("k", 10.0) == first
        # an independent kernel draws its own offset
        other = inj.perturb_prediction("other", 10.0)
        assert other != first

    def test_be_outcome_delay_and_drop(self):
        inj = FaultInjector(
            FaultPlan(be_delay=1.0, be_delay_factor=3.0, be_drop=1.0)
        )
        duration, dropped = inj.be_outcome(2.0)
        assert duration == pytest.approx(6.0)
        assert dropped
        assert inj.be_delayed == 1 and inj.be_dropped == 1

    def test_clean_channels_pass_through(self):
        inj = FaultInjector(FaultPlan(burst=0.5))
        assert inj.perturb_prediction("k", 10.0) == 10.0
        assert inj.be_outcome(2.0) == (2.0, False)
        assert inj.predictions_perturbed == 0

    def test_bursts_compress_gaps(self):
        inj = FaultInjector(FaultPlan(burst=1.0, burst_size=3))
        gaps = np.full(6, 10.0)
        out = inj.perturb_gaps(gaps)
        assert inj.bursts_injected == 2
        # every burst leaves its leading gap intact, compresses the rest
        assert list(out) == pytest.approx([10.0, 0.5, 0.5] * 2)
        # the input array is not mutated
        assert list(gaps) == [10.0] * 6


class TestPredictionErrorTracker:
    def test_relative_error_band(self):
        tracker = PredictionErrorTracker(alpha=0.5)
        band = tracker.record("k", 12.0, 10.0)
        assert band == pytest.approx(0.2)
        assert tracker.band() == pytest.approx(0.2)
        assert tracker.band("k") == pytest.approx(0.2)

    def test_per_kernel_falls_back_to_overall(self):
        tracker = PredictionErrorTracker()
        tracker.record("k", 15.0, 10.0)
        assert tracker.band("never_seen") == tracker.band()

    def test_ewma_smoothing(self):
        tracker = PredictionErrorTracker(alpha=0.5)
        tracker.record("k", 10.0, 10.0)   # error 0
        tracker.record("k", 20.0, 10.0)   # error 1
        assert tracker.band() == pytest.approx(0.5)

    def test_first_observation_seeds_per_kernel_band_exactly(self):
        # Regression: the first sample must become the band verbatim,
        # not be down-weighted by an EWMA blend with a phantom prior.
        tracker = PredictionErrorTracker(alpha=0.15)
        tracker.record("k", 14.0, 10.0)   # error 0.4
        assert tracker.band("k") == pytest.approx(0.4)

    def test_second_observation_blends_per_kernel_band(self):
        tracker = PredictionErrorTracker(alpha=0.5)
        tracker.record("k", 14.0, 10.0)   # seeds 0.4
        tracker.record("k", 10.0, 10.0)   # error 0 -> 0.5*0 + 0.5*0.4
        assert tracker.band("k") == pytest.approx(0.2)

    def test_ignores_non_positive_actuals(self):
        tracker = PredictionErrorTracker()
        tracker.record("k", 10.0, 0.0)
        assert tracker.observations == 0

    def test_rejects_bad_alpha(self):
        with pytest.raises(PredictionError):
            PredictionErrorTracker(alpha=0.0)


class TestGuardConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            GuardConfig(margin_factor=-1.0)
        with pytest.raises(ConfigError):
            GuardConfig(reorder_risk=0.3, exclusive_risk=0.2)
        with pytest.raises(ConfigError):
            GuardConfig(recover_ratio=1.0)
        with pytest.raises(ConfigError):
            GuardConfig(risk_alpha=0.0)


class TestMispredictGuard:
    def test_margin_scales_with_error_band(self):
        guard = MispredictGuard(GuardConfig(margin_factor=2.0))
        assert guard.margin_ms(10.0) == 0.0
        guard.note_launch("k", 12.0, 10.0)
        band = guard.errors.band()
        assert guard.margin_ms(10.0) == pytest.approx(2.0 * band * 10.0)

    def test_degradation_ladder_and_recovery(self):
        config = GuardConfig(reorder_risk=0.3, exclusive_risk=0.6,
                             recover_ratio=0.5, risk_alpha=0.5)
        guard = MispredictGuard(config)
        assert guard.mode == "fuse"
        # near-violations push risk over each rail in turn
        guard.note_query(49.0, 50.0)   # risk -> 1.0 (first sample)
        assert guard.mode == "reorder"
        guard.note_query(49.0, 50.0)
        assert guard.mode == "exclusive"
        # healthy latencies decay the risk; hysteresis steps back one
        # mode at a time
        while guard.mode == "exclusive":
            guard.note_query(10.0, 50.0)
        assert guard.mode == "reorder"
        assert guard.risk < config.exclusive_risk * config.recover_ratio
        while guard.mode == "reorder":
            guard.note_query(10.0, 50.0)
        assert guard.mode == "fuse"
        # every transition was logged
        modes = [(old, new) for _, old, new in guard.transitions]
        assert modes == [
            ("fuse", "reorder"), ("reorder", "exclusive"),
            ("exclusive", "reorder"), ("reorder", "fuse"),
        ]

    def test_healthy_operating_point_is_not_a_near_violation(self):
        # ~45 ms of a 50 ms target is the QOS_GUARD operating point; it
        # must not count toward the risk or the guard degrades on clean
        # runs.
        guard = MispredictGuard(GuardConfig())
        for _ in range(200):
            guard.note_query(45.0, 50.0)
        assert guard.mode == "fuse"
        assert guard.risk == 0.0

    def test_note_decision_counts_current_mode(self):
        guard = MispredictGuard(GuardConfig())
        guard.note_decision()
        guard.mode = "exclusive"
        guard.note_decision()
        assert guard.mode_decisions == {
            "fuse": 1, "reorder": 0, "exclusive": 1,
        }


class TestGuardedPolicies:
    def test_exclusive_mode_launches_lc_only(self, system):
        guard = MispredictGuard(GuardConfig())
        guard.mode = "exclusive"
        policy = TackerPolicy(
            system.gpu, system.models, 50.0, system.artifacts, guard=guard
        )
        queries = make_queries(system, 1)
        action = policy.decide(0.0, queries, [be_app(system)])
        assert action.kind == "lc"

    def test_reorder_mode_never_fuses(self, system):
        guard = MispredictGuard(GuardConfig())
        guard.mode = "reorder"
        # pin the risk inside the reorder band so the short healthy run
        # does not decay it below the recovery rail
        guard.risk = 0.15
        guard.queries_observed = 1
        policy = TackerPolicy(
            system.gpu, system.models, 50.0, system.artifacts, guard=guard
        )
        server = ColocationServer(
            system.gpu, oracle=system.oracle, policy=policy
        )
        result = server.run(make_queries(system, 4), [be_app(system)])
        assert result.n_fused_kernels == 0
        assert result.guard_mode_decisions["reorder"] > 0

    def test_error_band_inflates_threshold(self, system):
        guard = MispredictGuard(GuardConfig(margin_factor=2.0))
        guard.note_launch("k", 20.0, 10.0)  # huge observed error
        policy = BaymaxPolicy(
            system.gpu, system.models, 50.0, guard=guard
        )
        queries = make_queries(system, 1)
        thr = policy.headroom.headroom_ms(0.0, queries)
        guarded = policy._guarded_thr(thr, queries)
        assert guarded < thr

    def test_unguarded_threshold_unchanged(self, system):
        policy = BaymaxPolicy(system.gpu, system.models, 50.0)
        queries = make_queries(system, 1)
        assert policy._guarded_thr(12.0, queries) == 12.0


class TestAdmissionControl:
    def make_server(self, system, guarded=True):
        guard = MispredictGuard(GuardConfig()) if guarded else None
        policy = BaymaxPolicy(
            system.gpu, system.models, 50.0, guard=guard
        )
        return ColocationServer(
            system.gpu, oracle=system.oracle, policy=policy
        )

    def test_be_shed_when_slack_gone(self, system):
        server = self.make_server(system)
        queries = make_queries(system, 1)
        result = empty_result()
        action = Action(kind="be", be_app=be_app(system))
        # at now = internal target the reserved LC time is pure deficit
        internal = server.policy.headroom.qos_ms
        admitted = server._admit(action, internal, queries, result)
        assert admitted.kind == "lc"
        assert result.n_shed_be == 1 and result.n_deferred_be == 0

    def test_be_deferred_inside_margin(self, system):
        server = self.make_server(system)
        queries = make_queries(system, 1)
        result = empty_result()
        remaining = server._true_remaining_ms(queries[0])
        internal = server.policy.headroom.qos_ms
        now = internal - remaining - 0.5   # slack = 0.5 < 1 ms margin
        action = Action(kind="be", be_app=be_app(system))
        admitted = server._admit(action, now, queries, result)
        assert admitted.kind == "lc"
        assert result.n_deferred_be == 1 and result.n_shed_be == 0

    def test_be_admitted_with_headroom(self, system):
        server = self.make_server(system)
        queries = make_queries(system, 1)
        result = empty_result()
        action = Action(kind="be", be_app=be_app(system))
        admitted = server._admit(action, 0.0, queries, result)
        assert admitted is action
        assert result.n_shed_be == result.n_deferred_be == 0

    def test_unguarded_policy_bypasses_admission(self, system):
        server = self.make_server(system, guarded=False)
        queries = make_queries(system, 1)
        result = empty_result()
        action = Action(kind="be", be_app=be_app(system))
        internal = server.policy.headroom.qos_ms
        assert server._admit(action, internal, queries, result) is action
        assert result.n_shed_be == 0

    def test_non_be_actions_pass_through(self, system):
        server = self.make_server(system)
        queries = make_queries(system, 1)
        action = Action(kind="lc", query=queries[0])
        out = server._admit(action, 100.0, queries, empty_result())
        assert out is action


class TestFaultedServerRuns:
    def test_dropped_launches_burn_time_without_credit(self, system):
        plan = FaultPlan(be_drop=1.0)
        policy = BaymaxPolicy(system.gpu, system.models, 50.0)
        server = ColocationServer(
            system.gpu, oracle=system.oracle, policy=policy,
            faults=FaultInjector(plan),
        )
        result = server.run(
            make_queries(system, 3, gap_ms=100.0), [be_app(system)]
        )
        assert result.n_dropped_be == result.n_be_kernels > 0
        assert result.total_be_work_ms == 0.0
        assert result.fault_events["be_dropped"] == result.n_dropped_be

    def test_delayed_launches_credit_solo_work(self, system):
        plan = FaultPlan(be_delay=1.0, be_delay_factor=2.0)
        policy = BaymaxPolicy(system.gpu, system.models, 50.0)
        server = ColocationServer(
            system.gpu, oracle=system.oracle, policy=policy,
            faults=FaultInjector(plan),
        )
        queries = make_queries(system, 3, gap_ms=100.0)
        faulted = server.run(queries, [be_app(system)])
        assert faulted.n_delayed_be == faulted.n_be_kernels > 0
        # credited work is the solo duration, not the inflated one
        app = be_app(system)
        solo = system.oracle.solo_ms(app.head.kernel, app.head.grid)
        assert faulted.total_be_work_ms == pytest.approx(
            solo * faulted.n_be_kernels, rel=1e-6
        )


class TestSystemIntegration:
    def test_clean_plan_matches_no_plan(self, system):
        model = model_by_name("resnet50")
        runs = []
        for faults in (False, FaultPlan()):
            policy = system.make_policy("baymax")
            runs.append(system.run_custom(
                model, ["fft"], policy, n_queries=10, faults=faults
            ))
        assert runs[0].latencies_ms == runs[1].latencies_ms
        assert runs[0].total_be_work_ms == runs[1].total_be_work_ms

    def test_faulted_run_is_reproducible(self, system):
        model = model_by_name("resnet50")
        plan = FaultPlan(
            predictor_noise=0.2, predictor_bias=0.9, be_drop=0.2,
            burst=0.2, burst_size=3,
        )
        runs = []
        for _ in range(2):
            policy = system.make_policy("baymax")
            runs.append(system.run_custom(
                model, ["fft"], policy, n_queries=10, faults=plan
            ))
        assert runs[0].latencies_ms == runs[1].latencies_ms
        assert runs[0].fault_events == runs[1].fault_events

    def test_perturbation_hook_is_uninstalled_after_run(self, system):
        model = model_by_name("resnet50")
        policy = system.make_policy("baymax")
        system.run_custom(
            model, ["fft"], policy, n_queries=5,
            faults=FaultPlan(predictor_noise=0.2),
        )
        assert system.models.perturb is None

    def test_make_policy_guard_forms(self, system):
        assert system.make_policy("tacker").guard is None
        guarded = system.make_policy("tacker", guard=True)
        assert isinstance(guarded.guard, MispredictGuard)
        config = GuardConfig(margin_factor=3.0)
        custom = system.make_policy("baymax", guard=config)
        assert custom.guard.config is config


class TestNodeFaults:
    """Node-level fault schedules (the autoscaling control plane's
    crash / slow / flap modes)."""

    def test_kind_is_validated(self):
        with pytest.raises(ConfigError, match="unknown node fault kind"):
            NodeFault(kind="meltdown", node=0)

    @pytest.mark.parametrize("kwargs", [
        dict(kind="crash", node=-1),
        dict(kind="crash", node=0, at_ms=-1.0),
        dict(kind="slow", node=0, factor=1.0),
        dict(kind="flap", node=0, down_ms=0.0),
        dict(kind="flap", node=0, up_ms=-5.0),
    ])
    def test_bad_fault_knobs(self, kwargs):
        with pytest.raises(ConfigError):
            NodeFault(**kwargs)

    def test_crash_is_permanent(self):
        fault = NodeFault(kind="crash", node=0, at_ms=100.0)
        assert not fault.is_down(99.9)
        assert fault.is_down(100.0)
        assert fault.is_down(1e9)

    def test_flap_phase_math(self):
        fault = NodeFault(kind="flap", node=0, at_ms=1000.0,
                          down_ms=200.0, up_ms=300.0)
        assert not fault.is_down(999.0)     # before onset
        assert fault.is_down(1000.0)        # down window starts
        assert fault.is_down(1199.0)
        assert not fault.is_down(1200.0)    # up window
        assert not fault.is_down(1499.0)
        assert fault.is_down(1500.0)        # next period
        assert fault.slow_factor_at(1100.0) == 1.0

    def test_slow_factor_onset(self):
        fault = NodeFault(kind="slow", node=2, at_ms=500.0, factor=3.0)
        assert fault.slow_factor_at(499.0) == 1.0
        assert fault.slow_factor_at(500.0) == 3.0
        assert not fault.is_down(600.0)     # slow nodes stay routable

    def test_plan_rejects_non_faults(self):
        with pytest.raises(ConfigError, match="not a NodeFault"):
            NodeFaultPlan(faults=("crash",))

    def test_plan_is_per_node(self):
        plan = NodeFaultPlan(faults=(
            NodeFault(kind="crash", node=0, at_ms=100.0),
            NodeFault(kind="slow", node=1, at_ms=0.0, factor=2.0),
            NodeFault(kind="slow", node=1, at_ms=50.0, factor=3.0),
        ))
        assert plan.any_faults
        assert len(plan.for_node(1)) == 2
        assert plan.for_node(2) == ()
        assert plan.is_down(0, 150.0) and not plan.is_down(1, 150.0)
        # stacked slowdowns multiply
        assert plan.slow_factor(1, 60.0) == 6.0
        assert plan.slow_factor(1, 10.0) == 2.0

    def test_crash_window_queries(self):
        plan = NodeFaultPlan(faults=(
            NodeFault(kind="crash", node=0, at_ms=2500.0),
        ))
        assert plan.crash_in(0, 2000.0, 3000.0) == 2500.0
        assert plan.crash_in(0, 0.0, 2000.0) is None
        assert plan.crash_in(0, 2500.0, 2600.0) == 2500.0
        assert plan.crash_in(1, 0.0, 1e9) is None
        assert not plan.crashed_by(0, 2499.0)
        assert plan.crashed_by(0, 2500.0)

    def test_empty_plan_is_inert(self):
        plan = NodeFaultPlan()
        assert not plan.any_faults
        assert not plan.is_down(0, 0.0)
        assert plan.slow_factor(0, 0.0) == 1.0
