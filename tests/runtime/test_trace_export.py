"""Tests for the Chrome trace exporter."""

import json

import pytest

from repro.errors import SchedulingError
from repro.gpusim.trace import Timeline
from repro.runtime.server import ExecutedKernel, ServerResult
from repro.runtime.trace_export import to_chrome_trace, write_chrome_trace


def result_with_trace():
    return ServerResult(
        qos_ms=50.0, horizon_ms=100.0, end_ms=100.0,
        latencies_ms=[40.0], be_work_ms={"fft": 5.0},
        tc_timeline=Timeline(), cd_timeline=Timeline(),
        n_fused_kernels=1,
        executed=[
            ExecutedKernel(0.0, 1.0, "lc", "tgemm_l", 1.0, 0.0),
            ExecutedKernel(1.0, 2.5, "fused", "fused_x", 2.0, 2.5),
            ExecutedKernel(2.5, 3.0, "be", "fft", 2.5, 3.0),
        ],
    )


class TestChromeTrace:
    def test_structure(self):
        trace = to_chrome_trace(result_with_trace())
        assert trace["displayTimeUnit"] == "ms"
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"tgemm_l", "fused_x", "fft"} <= names

    def test_thread_metadata_rows(self):
        trace = to_chrome_trace(result_with_trace())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        labels = {e["args"]["name"] for e in meta}
        assert labels == {"Tensor cores", "CUDA cores", "Fused kernels"}

    def test_fused_kernel_spans_unit_and_fused_rows(self):
        trace = to_chrome_trace(result_with_trace())
        fused = [
            e for e in trace["traceEvents"]
            if e.get("name") == "fused_x" and e["ph"] == "X"
        ]
        assert {e["tid"] for e in fused} == {1, 2, 3}

    def test_timestamps_in_microseconds(self):
        trace = to_chrome_trace(result_with_trace())
        lc = next(e for e in trace["traceEvents"] if e["name"] == "tgemm_l")
        assert lc["ts"] == 0.0
        assert lc["dur"] == pytest.approx(1000.0)

    def test_limit(self):
        trace = to_chrome_trace(result_with_trace(), limit=1)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"tgemm_l"}

    def test_unrecorded_run_rejected(self):
        bare = result_with_trace()
        bare.executed = []
        with pytest.raises(SchedulingError, match="record_kernels"):
            to_chrome_trace(bare)

    def test_write_roundtrip(self, tmp_path):
        path = write_chrome_trace(
            result_with_trace(), str(tmp_path / "trace.json")
        )
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["otherData"]["n_fused"] == 1


class TestWriteRoundtrip:
    """Full round-trip: ServerResult -> JSON file -> parsed events."""

    def loaded(self, tmp_path):
        result = result_with_trace()
        path = write_chrome_trace(result, str(tmp_path / "trace.json"))
        with open(path) as handle:
            return result, json.load(handle)

    def test_span_counts_survive_serialization(self, tmp_path):
        result, loaded = self.loaded(tmp_path)
        spans = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        # one span per busy execution unit plus the dedicated fused row:
        # the fused kernel occupies both unit rows and its own track,
        # the lc/be kernels one row each
        assert len(spans) == len(result.executed) + 2 * result.n_fused_kernels
        meta = [e for e in loaded["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 3

    def test_tids_map_to_execution_units(self, tmp_path):
        _, loaded = self.loaded(tmp_path)
        spans = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in spans} <= {1, 2, 3}
        by_name = {}
        for event in spans:
            by_name.setdefault(event["name"], set()).add(event["tid"])
        assert by_name["tgemm_l"] == {1}   # TC kernel: Tensor-core row
        assert by_name["fft"] == {2}       # CD kernel: CUDA-core row
        assert by_name["fused_x"] == {1, 2, 3}

    def test_microsecond_conversion_survives_serialization(self, tmp_path):
        result, loaded = self.loaded(tmp_path)
        spans = sorted(
            (e for e in loaded["traceEvents"] if e["ph"] == "X"),
            key=lambda e: (e["ts"], e["tid"]),
        )
        first = result.executed[0]
        assert spans[0]["ts"] == pytest.approx(first.start_ms * 1000.0)
        assert spans[0]["dur"] == pytest.approx(
            (first.end_ms - first.start_ms) * 1000.0
        )
        last = result.executed[-1]
        assert spans[-1]["ts"] == pytest.approx(last.start_ms * 1000.0)

    def test_kinds_and_colours_preserved(self, tmp_path):
        _, loaded = self.loaded(tmp_path)
        spans = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert {e["args"]["kind"] for e in spans} == {"lc", "be", "fused"}
        assert all(e["cat"] == e["args"]["kind"] for e in spans)
