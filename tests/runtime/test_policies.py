"""Tests for the Tacker and Baymax scheduling policies."""

import pytest

from repro.models.zoo import model_by_name
from repro.runtime.policies import (
    BaymaxPolicy,
    TackerPolicy,
    scheduling_overhead_ms,
)
from repro.runtime.query import BEApplication, KernelInstance, Query
from repro.runtime.system import TackerSystem


@pytest.fixture(scope="module")
def system(gpu):
    sys_ = TackerSystem(gpu=gpu)
    sys_.prepare_fusion("tgemm_l", "fft")
    return sys_


def lc_query(system, arrival=0.0, kernels=("tgemm_l", "relu")):
    instances = tuple(
        KernelInstance(system.library.get(name),
                       system.library.get(name).default_grid)
        for name in kernels
    )
    return Query(model_by_name("resnet50"), arrival, instances)


def be_fft(system):
    kernel = system.library.get("fft")
    return BEApplication(
        "fft", (KernelInstance(kernel, kernel.default_grid),)
    )


class TestSchedulingOverhead:
    def test_paper_anchors(self):
        # Section VIII-I: ~0.5 ms static, ~1.2 ms with 50 fusion pairs.
        assert scheduling_overhead_ms(0, fusion=False) == pytest.approx(0.5)
        assert scheduling_overhead_ms(50) == pytest.approx(1.2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            scheduling_overhead_ms(-1)


class TestBaymaxPolicy:
    def test_pure_be_when_idle(self, gpu, system):
        policy = BaymaxPolicy(gpu, system.models, 50.0)
        action = policy.decide(0.0, [], [be_fft(system)])
        assert action.kind == "be"

    def test_nothing_runnable_returns_none(self, gpu, system):
        policy = BaymaxPolicy(gpu, system.models, 50.0)
        assert policy.decide(0.0, [], []) is None

    def test_reorders_into_headroom(self, gpu, system):
        policy = BaymaxPolicy(gpu, system.models, 50.0)
        query = lc_query(system)
        action = policy.decide(0.0, [query], [be_fft(system)])
        assert action.kind == "be"

    def test_no_headroom_runs_lc(self, gpu, system):
        policy = BaymaxPolicy(gpu, system.models, 50.0)
        query = lc_query(system, arrival=-49.0)  # elapsed ~ QoS
        action = policy.decide(0.0, [query], [be_fft(system)])
        assert action.kind == "lc"

    def test_one_reorder_per_lc_kernel(self, gpu, system):
        policy = BaymaxPolicy(gpu, system.models, 50.0)
        query = lc_query(system)
        app = be_fft(system)
        first = policy.decide(0.0, [query], [app])
        assert first.kind == "be"
        second = policy.decide(1.0, [query], [app])
        assert second.kind == "lc"

    def test_never_fuses(self, gpu, system):
        policy = BaymaxPolicy(gpu, system.models, 50.0)
        query = lc_query(system)
        app = be_fft(system)
        for now in (0.0, 1.0, 2.0):
            action = policy.decide(now, [query], [app])
            assert action.kind != "fused"


class TestTackerPolicy:
    def make(self, gpu, system):
        return TackerPolicy(gpu, system.models, 50.0, system.artifacts)

    def test_fuses_tc_kernel_with_be_cd(self, gpu, system):
        policy = self.make(gpu, system)
        query = lc_query(system)
        action = policy.decide(0.0, [query], [be_fft(system)])
        assert action.kind == "fused"
        assert action.fused.tc.ir.name == "tgemm_l"
        assert policy.fusions == 1

    def test_eq8_blocks_fusion_without_headroom(self, gpu, system):
        policy = self.make(gpu, system)
        query = lc_query(system, arrival=-49.5)
        action = policy.decide(0.0, [query], [be_fft(system)])
        assert action.kind == "lc"

    def test_unfusable_kernel_falls_back(self, gpu, system):
        policy = self.make(gpu, system)
        kernel = system.library.get("tgemm_l")
        instances = (
            KernelInstance(kernel, kernel.default_grid, fusable=False),
        )
        query = Query(model_by_name("resnet50"), 0.0, instances)
        action = policy.decide(0.0, [query], [be_fft(system)])
        assert action.kind in ("be", "lc")

    def test_missing_artifact_falls_back(self, gpu, system):
        policy = TackerPolicy(gpu, system.models, 50.0, artifacts={})
        query = lc_query(system)
        action = policy.decide(0.0, [query], [be_fft(system)])
        assert action.kind != "fused"

    def test_pure_be_when_idle(self, gpu, system):
        policy = self.make(gpu, system)
        action = policy.decide(0.0, [], [be_fft(system)])
        assert action.kind == "be"

    def test_predictions_attached_to_fused_action(self, gpu, system):
        policy = self.make(gpu, system)
        action = policy.decide(0.0, [lc_query(system)], [be_fft(system)])
        assert action.predicted_fused_ms > action.predicted_lc_ms > 0
        assert action.predicted_be_ms > 0


class TestReverseFusion:
    """Section IV: "The LC kernels and BE kernels are not limited to a
    specified type" — a BE Tensor-core kernel can ride under an LC
    CUDA-core kernel."""

    def test_be_tc_fuses_under_lc_cd(self, gpu, system):
        system.prepare_fusion("tgemm_l", "relu")
        policy = TackerPolicy(gpu, system.models, 50.0, system.artifacts)
        relu = system.library.get("relu")
        query = Query(
            model_by_name("resnet50"), 0.0,
            (KernelInstance(relu, relu.default_grid),),
        )
        gemm = system.library.get("tgemm_l")
        be_train = BEApplication(
            "Res-T-like",
            (KernelInstance(gemm, gemm.default_grid, fusable=True),),
        )
        action = policy.decide(0.0, [query], [be_train])
        assert action.kind == "fused"
        assert action.fused.tc.ir.name == "tgemm_l"
        assert action.fused.cd.ir.name == "relu"

    def test_unfusable_be_tc_is_skipped(self, gpu, system):
        system.prepare_fusion("tgemm_l", "relu")
        policy = TackerPolicy(gpu, system.models, 50.0, system.artifacts)
        relu = system.library.get("relu")
        query = Query(
            model_by_name("resnet50"), 0.0,
            (KernelInstance(relu, relu.default_grid),),
        )
        gemm = system.library.get("tgemm_l")
        blackbox = BEApplication(
            "cudnn-like",
            (KernelInstance(gemm, gemm.default_grid, fusable=False),),
        )
        action = policy.decide(0.0, [query], [blackbox])
        assert action.kind != "fused"

    def test_reverse_fusion_cost_accounted_against_lc(self, gpu, system):
        """The headroom cost of a reverse fusion is the fused time minus
        the LC (CD) kernel's own time — the whole BE GEMM rides inside
        the query's budget."""
        system.prepare_fusion("tgemm_l", "relu")
        policy = TackerPolicy(gpu, system.models, 50.0, system.artifacts)
        relu = system.library.get("relu")
        # Query with nearly no headroom: the reverse fusion's extra LC
        # time (~0.5 ms, the whole BE GEMM) no longer fits and must be
        # refused.
        query = Query(
            model_by_name("resnet50"), -44.8,
            (KernelInstance(relu, relu.default_grid),),
        )
        gemm = system.library.get("tgemm_l")
        be_train = BEApplication(
            "Res-T-like",
            (KernelInstance(gemm, gemm.default_grid, fusable=True),),
        )
        action = policy.decide(0.0, [query], [be_train])
        assert action.kind == "lc"
