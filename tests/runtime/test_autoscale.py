"""Tests for the autoscaling control plane (runtime.autoscale).

The simulation-backed tests share tiny module-scoped runs (2–3
replicas, a few epochs) so the whole file stays in unit-test
territory; the fleet-scale behaviour is the benchmark suite's job
(``benchmarks/test_autoscale.py``).
"""

import pytest

from repro import audit
from repro.errors import ConfigError
from repro.experiments import autoscale as autoscale_exp
from repro.models.zoo import model_by_name
from repro.runtime.autoscale import (
    AutoscaleSpec,
    BurnRateScaler,
    EpochObservation,
    ReactiveScaler,
    RefitPlan,
    SCALER_POLICIES,
    ScalerConfig,
    StaticScaler,
    make_scaler,
    run_autoscale,
)
from repro.runtime.faults import NodeFault, NodeFaultPlan
from repro.runtime.workload import query_instances

#: Small enough to run in seconds, big enough to cross epoch
#: boundaries and see the diurnal shape move.
TINY = dict(scenario="diurnal", rate_nodes=2, span_ms=6000.0,
            epoch_ms=2000.0)


def obs(**kwargs):
    base = dict(
        epoch=1, active_nodes=8, n_arrivals=100, demand_units=8.0,
        prev_demand_units=8.0, routed_util=0.4, mean_slack_ms=10.0,
        served=100, violations=0, burn_rate=0.0, guard_events=0,
    )
    base.update(kwargs)
    return EpochObservation(**base)


class TestConfigValidation:
    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="unknown scaler policy"):
            ScalerConfig(policy="magic")

    @pytest.mark.parametrize("kwargs", [
        dict(min_nodes=0),
        dict(min_nodes=4, max_nodes=2),
        dict(pack_units=0.0),
        dict(slo_budget=0.0),
        dict(down_burn=2.0, up_burn=1.0),
        dict(cooldown_epochs=0),
        dict(max_step_down=0),
        dict(util_lo_ratio=1.2, util_hi_ratio=1.1),
    ])
    def test_bad_scaler_knobs(self, kwargs):
        with pytest.raises(ConfigError):
            ScalerConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(scenario="diurnal", epoch_ms=0.0),
        dict(scenario="diurnal", span_ms=10.0, epoch_ms=100.0),
        dict(scenario="diurnal", rate_nodes=0),
        dict(scenario="diurnal", routing="psychic"),
        dict(scenario="diurnal", sketch_bins=1),
    ])
    def test_bad_spec(self, kwargs):
        with pytest.raises(ConfigError):
            AutoscaleSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(bias=0.0),
        dict(noise=-0.1),
        dict(regression_pct=0.0),
        dict(batch=0),
    ])
    def test_bad_refit(self, kwargs):
        with pytest.raises(ConfigError):
            RefitPlan(**kwargs)

    def test_factory_covers_every_policy(self):
        for policy in SCALER_POLICIES:
            scaler = make_scaler(ScalerConfig(policy=policy), 8, 0.25)
            assert scaler.name == policy
            assert scaler.initial_nodes() == 8


class TestScalerLogic:
    """Pure decision logic, no simulation."""

    def test_static_always_holds(self):
        scaler = StaticScaler(ScalerConfig(policy="static"), 8, 0.25)
        for burn in (0.0, 5.0):
            target, _ = scaler.target(obs(burn_rate=burn, routed_util=0.9))
            assert target == 8

    def test_reactive_scales_with_utilization(self):
        cfg = ScalerConfig(policy="reactive")
        scaler = ReactiveScaler(cfg, 8, 0.25)
        band = cfg.pack_units * 0.25
        up, why = scaler.target(obs(routed_util=band * 1.5))
        assert up > 8 and "above band" in why
        down, why = scaler.target(obs(routed_util=band * 0.3))
        assert down < 8 and "below band" in why
        hold, why = scaler.target(obs(routed_util=band))
        assert hold == 8 and "in band" in why

    def test_burnrate_hot_epoch_forces_up(self):
        scaler = BurnRateScaler(ScalerConfig(policy="burnrate"), 8, 0.25)
        target, why = scaler.target(
            obs(burn_rate=2.0, demand_units=2.0, prev_demand_units=2.0)
        )
        assert target > 8 and "hot" in why

    def test_burnrate_guard_event_counts_as_hot(self):
        scaler = BurnRateScaler(ScalerConfig(policy="burnrate"), 8, 0.25)
        target, why = scaler.target(
            obs(guard_events=3, demand_units=2.0, prev_demand_units=2.0)
        )
        assert target > 8 and "hot" in why

    def test_burnrate_drains_only_after_cooldown(self):
        cfg = ScalerConfig(policy="burnrate", cooldown_epochs=2)
        scaler = BurnRateScaler(cfg, 8, 0.25)
        calm = obs(demand_units=2.0, prev_demand_units=2.0, burn_rate=0.0)
        first, why = scaler.target(calm)
        assert first == 8 and "cooldown" in why
        second, why = scaler.target(calm)
        assert second < 8 and "drain" in why

    def test_burnrate_hot_epoch_resets_cooldown(self):
        cfg = ScalerConfig(policy="burnrate", cooldown_epochs=2)
        scaler = BurnRateScaler(cfg, 8, 0.25)
        calm = obs(demand_units=2.0, prev_demand_units=2.0, burn_rate=0.0)
        scaler.target(calm)
        scaler.target(obs(burn_rate=2.0))  # hot: calm streak resets
        target, why = scaler.target(calm)
        assert target == 8 and "cooldown 1/2" in why

    def test_burnrate_extrapolates_rising_demand_only(self):
        cfg = ScalerConfig(policy="burnrate", headroom_nodes=1)
        scaler = BurnRateScaler(cfg, 8, 0.25)
        rising, _ = scaler.target(
            obs(demand_units=8.0, prev_demand_units=6.0, active_nodes=7)
        )
        # projected 10 units / 1.45 + 1 headroom = 8 nodes
        assert rising == 8
        scaler = BurnRateScaler(cfg, 8, 0.25)
        falling, why = scaler.target(
            obs(demand_units=6.0, prev_demand_units=8.0, active_nodes=5)
        )
        # falling demand is not extrapolated below its observed level
        assert falling == 6 and "needs 6" in why


@pytest.fixture(scope="module")
def static_result():
    return run_autoscale(AutoscaleSpec(
        scaler=ScalerConfig(policy="static"), **TINY
    ))


@pytest.fixture(scope="module")
def crash_result():
    """A mid-epoch crash, simulated under the invariant auditor."""
    audit.reset()
    audit.enable()
    try:
        result = run_autoscale(AutoscaleSpec(
            scaler=ScalerConfig(policy="static"),
            node_faults=NodeFaultPlan(faults=(
                NodeFault(kind="crash", node=0, at_ms=2500.0),
            )),
            **TINY,
        ))
        checks = audit.summary()
    finally:
        audit.reset()
    return result, checks


class TestStaticRun:
    def test_no_query_lost(self, static_result):
        assert static_result.n_trace_queries > 0
        assert static_result.total_queries == static_result.n_trace_queries

    def test_kernel_conservation(self, static_result, library):
        """Every served query retires exactly its kernel sequence
        (a fused launch retires one LC kernel and one BE kernel)."""
        lc_retired = sum(
            s.n_lc_kernels + s.n_fused_kernels
            for s in static_result.node_stats
        )
        # the diurnal scenario's LC services
        kernels_per_query = {
            name: len(query_instances(model_by_name(name), library))
            for name in ("vgg16", "resnet50")
        }
        lo = min(kernels_per_query.values()) * static_result.total_queries
        hi = max(kernels_per_query.values()) * static_result.total_queries
        assert lo <= lc_retired <= hi

    def test_static_bills_the_full_fleet(self, static_result):
        spec = static_result.spec
        assert static_result.node_seconds == pytest.approx(
            spec.rate_nodes * spec.span_ms / 1000.0
        )
        assert static_result.saved_vs_static_pct == pytest.approx(0.0)

    def test_decision_log_covers_every_epoch(self, static_result):
        # the controller logs holds too — all but the final epoch
        assert len(static_result.decisions) == static_result.n_epochs - 1
        assert all(d.action == "hold" for d in static_result.decisions)

    def test_summary_shape(self, static_result):
        summary = static_result.summary_dict()
        assert summary["scaler"] == "static"
        assert summary["rerouted"] == 0
        assert summary["rollout"] == "disabled"
        assert summary["queries"] == static_result.total_queries


class TestCrashReroute:
    def test_no_query_silently_dropped(self, crash_result):
        result, _ = crash_result
        assert result.total_queries == result.n_trace_queries
        assert result.n_rerouted > 0

    def test_crashed_node_leaves_the_pool(self, crash_result):
        result, _ = crash_result
        assert result.crashed == (0,)
        for epoch in result.epochs[2:]:
            assert 0 not in epoch.nodes

    def test_replacement_provisioned(self, crash_result):
        # static: the operator replaces lost capacity next epoch
        result, _ = crash_result
        assert result.epochs[-1].n_nodes == result.spec.rate_nodes

    def test_crash_truncates_the_bill(self, crash_result):
        result, _ = crash_result
        full = result.spec.rate_nodes * result.spec.span_ms / 1000.0
        assert result.node_seconds < full

    def test_kernel_conservation_under_audit(self, crash_result, library):
        """Re-routed queries re-run in full on a survivor; the crashed
        node's partial work is waste, never a silent drop."""
        result, checks = crash_result
        assert checks, "the auditor saw no checks"
        kernels_per_query = {
            name: len(query_instances(model_by_name(name), library))
            for name in ("vgg16", "resnet50")
        }
        lc_retired = sum(
            s.n_lc_kernels + s.n_fused_kernels for s in result.node_stats
        )
        # at least every trace query's full sequence retired somewhere
        assert lc_retired >= (
            min(kernels_per_query.values()) * result.n_trace_queries
        )

    def test_penalty_counts_toward_latency(self):
        """A re-routed query's clock starts at its original arrival."""
        from repro.runtime.query import Query

        model = model_by_name("vgg16")
        query = Query(model, 10.0, (), penalty_ms=7.5)
        query.finish_ms = 12.0
        assert query.latency_ms == pytest.approx(9.5)


class TestNodeFaultModes:
    def test_slow_node_degrades_silently(self):
        healthy = run_autoscale(AutoscaleSpec(
            scenario="diurnal", rate_nodes=2, span_ms=4000.0,
            epoch_ms=2000.0, scaler=ScalerConfig(policy="static"),
        ))
        slowed = run_autoscale(AutoscaleSpec(
            scenario="diurnal", rate_nodes=2, span_ms=4000.0,
            epoch_ms=2000.0, scaler=ScalerConfig(policy="static"),
            node_faults=NodeFaultPlan(faults=(
                NodeFault(kind="slow", node=0, at_ms=0.0, factor=3.0),
            )),
        ))
        # same routing (the dispatcher cannot see the slowdown) ...
        assert slowed.total_queries == healthy.total_queries
        # ... but the served reality is worse
        assert slowed.total_violations > healthy.total_violations
        assert slowed.merged_p99_ms > healthy.merged_p99_ms

    def test_flapping_node_takes_no_new_queries_while_down(self):
        result = run_autoscale(AutoscaleSpec(
            scenario="diurnal", rate_nodes=2, span_ms=4000.0,
            epoch_ms=2000.0, scaler=ScalerConfig(policy="static"),
            node_faults=NodeFaultPlan(faults=(
                NodeFault(kind="flap", node=0, at_ms=0.0,
                          down_ms=4000.0, up_ms=1000.0),
            )),
        ))
        # node 0 was down for the whole span: everything went to node 1
        assert result.total_queries == result.n_trace_queries
        served_by = {}
        for stats in result.node_stats:
            served_by[stats.node] = (
                served_by.get(stats.node, 0) + stats.n_queries
            )
        assert served_by.get(0, 0) == 0
        assert served_by[1] == result.n_trace_queries


class TestCanaryRollout:
    def test_benign_refit_completes(self):
        result = run_autoscale(AutoscaleSpec(
            scenario="diurnal", rate_nodes=3, span_ms=8000.0,
            epoch_ms=2000.0, scaler=ScalerConfig(policy="static"),
            refit=RefitPlan(start_epoch=1, bias=1.0, noise=0.05,
                            batch=2, regression_pct=5.0),
        ))
        assert result.rollout_status == "completed"
        actions = [e.action for e in result.rollout_events]
        assert actions == ["canary", "promote", "complete"]

    def test_botched_refit_aborts_at_the_gate(self):
        result = run_autoscale(AutoscaleSpec(
            scenario="diurnal", rate_nodes=3, span_ms=8000.0,
            epoch_ms=2000.0, scaler=ScalerConfig(policy="static"),
            refit=RefitPlan(start_epoch=1, bias=0.45, noise=0.8,
                            batch=2, regression_pct=5.0),
        ))
        assert result.rollout_status == "aborted"
        actions = [e.action for e in result.rollout_events]
        assert actions == ["canary", "abort"]
        gate = result.rollout_events[0]
        assert gate.canary_p99_ms > gate.control_p99_ms
        # the blast radius stayed at one node for one epoch
        assert gate.nodes == (0,)


class TestDeterminism:
    def test_sweep_render_identical_serial_vs_parallel(self):
        """The committed results table must not depend on the worker
        count — the property the CI determinism gate enforces."""
        shapes = {"diurnal": (2, 4000.0, 2000.0)}
        kwargs = dict(
            scenario_names=("diurnal",),
            scalers=("static", "burnrate"),
            shapes=shapes, quick=True, rollouts=False,
        )
        serial = autoscale_exp.render(
            autoscale_exp.run(workers=1, **kwargs)
        )
        parallel = autoscale_exp.render(
            autoscale_exp.run(workers=4, **kwargs)
        )
        assert serial == parallel
        assert "diurnal" in serial and "burnrate" in serial
