"""Tests for queries and BE streams."""

import pytest

from repro.errors import SchedulingError
from repro.kernels.parboil import fft, mriq
from repro.models.zoo import model_by_name
from repro.runtime.query import BEApplication, KernelInstance, Query


def instances():
    return (
        KernelInstance(mriq(), 100),
        KernelInstance(fft(), 200, fusable=False),
    )


class TestKernelInstance:
    def test_delegates_to_kernel(self):
        inst = KernelInstance(mriq(), 50)
        assert inst.name == "mriq"
        assert inst.kind == "cd"


class TestQuery:
    def test_cursor_walks_sequence(self):
        q = Query(model_by_name("resnet50"), 5.0, instances())
        assert q.current.name == "mriq"
        assert len(q.remaining) == 2
        q.advance(10.0)
        assert q.current.name == "fft"
        assert not q.done
        q.advance(12.0)
        assert q.done
        assert q.finish_ms == 12.0
        assert q.latency_ms == 7.0

    def test_overrun_raises(self):
        q = Query(model_by_name("resnet50"), 0.0, instances())
        q.advance(1.0)
        q.advance(2.0)
        with pytest.raises(SchedulingError):
            q.advance(3.0)
        with pytest.raises(SchedulingError):
            _ = q.current

    def test_latency_before_finish_raises(self):
        q = Query(model_by_name("resnet50"), 0.0, instances())
        with pytest.raises(SchedulingError):
            _ = q.latency_ms

    def test_unique_ids(self):
        a = Query(model_by_name("resnet50"), 0.0, instances())
        b = Query(model_by_name("resnet50"), 0.0, instances())
        assert a.qid != b.qid


class TestBEApplication:
    def app(self, scales=(1.0,)):
        return BEApplication(
            "fft", (KernelInstance(fft(), 1000),), input_scales=scales
        )

    def test_cyclic_stream(self):
        app = self.app()
        first = app.head
        app.complete_head(0.5)
        assert app.head.name == first.name
        assert app.completed_kernels == 1
        assert app.completed_work_ms == 0.5

    def test_input_scaling_is_deterministic(self):
        a = self.app(scales=(0.5, 1.0, 1.5))
        b = self.app(scales=(0.5, 1.0, 1.5))
        grids_a = []
        for _ in range(10):
            grids_a.append(a.head.grid)
            a.complete_head(0.1)
        grids_b = []
        for _ in range(10):
            grids_b.append(b.head.grid)
            b.complete_head(0.1)
        assert grids_a == grids_b

    def test_input_scaling_varies_grids(self):
        app = self.app(scales=(0.5, 1.0, 1.5))
        grids = set()
        for _ in range(20):
            grids.add(app.head.grid)
            app.complete_head(0.1)
        assert len(grids) > 1
        assert grids <= {500, 1000, 1500}

    def test_unit_scale_returns_base_instance(self):
        app = self.app(scales=(1.0,))
        assert app.head is app.sequence[0]

    def test_validation(self):
        with pytest.raises(SchedulingError):
            BEApplication("empty", ())
        with pytest.raises(SchedulingError):
            BEApplication("x", (KernelInstance(fft(), 1),), input_scales=())
