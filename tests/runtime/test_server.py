"""Tests for the co-location server."""

import pytest

from repro.errors import SchedulingError
from repro.models.zoo import model_by_name
from repro.runtime.policies import BaymaxPolicy, TackerPolicy
from repro.runtime.query import BEApplication, KernelInstance, Query
from repro.runtime.server import ColocationServer
from repro.runtime.system import TackerSystem


@pytest.fixture(scope="module")
def system(gpu):
    sys_ = TackerSystem(gpu=gpu)
    sys_.prepare_fusion("tgemm_l", "fft")
    return sys_


def make_queries(system, count, gap_ms=30.0,
                 kernels=("tgemm_l", "relu", "tgemm_l", "bn")):
    instances = tuple(
        KernelInstance(system.library.get(n),
                       system.library.get(n).default_grid)
        for n in kernels
    )
    return [
        Query(model_by_name("resnet50"), i * gap_ms, instances)
        for i in range(count)
    ]


def be_app(system, name="fft"):
    kernel = system.library.get(name)
    return BEApplication(
        name, (KernelInstance(kernel, kernel.default_grid),)
    )


def run(system, policy_cls, queries, apps, **kwargs):
    if policy_cls is TackerPolicy:
        policy = TackerPolicy(
            system.gpu, system.models, 50.0, system.artifacts
        )
    else:
        policy = BaymaxPolicy(system.gpu, system.models, 50.0)
    server = ColocationServer(
        system.gpu, oracle=system.oracle, policy=policy, **kwargs
    )
    return server.run(queries, apps)


class TestBasicRuns:
    def test_all_queries_complete(self, system):
        queries = make_queries(system, 5)
        result = run(system, BaymaxPolicy, queries, [be_app(system)])
        assert len(result.latencies_ms) == 5
        assert all(q.done for q in queries)

    def test_rejects_empty_trace(self, system):
        with pytest.raises(SchedulingError):
            run(system, BaymaxPolicy, [], [be_app(system)])

    def test_lc_only_latency_is_solo(self, system):
        queries = make_queries(system, 3, gap_ms=100.0)
        result = run(system, BaymaxPolicy, queries, [])
        solo = sum(
            system.oracle.solo_ms(i.kernel, i.grid)
            for i in queries[0].instances
        )
        assert result.latencies_ms[0] == pytest.approx(solo, rel=0.01)

    def test_be_fills_idle_time(self, system):
        queries = make_queries(system, 3, gap_ms=100.0)
        result = run(system, BaymaxPolicy, queries, [be_app(system)])
        assert result.total_be_work_ms > 0
        assert result.n_be_kernels > 0

    def test_horizon_defaults_to_last_arrival_plus_qos(self, system):
        queries = make_queries(system, 3, gap_ms=40.0)
        result = run(system, BaymaxPolicy, queries, [be_app(system)])
        assert result.horizon_ms == pytest.approx(2 * 40.0 + 50.0)


class TestFusedExecution:
    def test_tacker_fuses_and_credits_be_work(self, system):
        queries = make_queries(system, 4, gap_ms=30.0)
        result = run(system, TackerPolicy, queries, [be_app(system)])
        assert result.n_fused_kernels > 0

    def test_fused_timelines_overlap(self, system):
        queries = make_queries(system, 4, gap_ms=30.0)
        result = run(system, TackerPolicy, queries, [be_app(system)])
        both = result.tc_timeline.intersection(result.cd_timeline)
        assert both.total() > 0

    def test_baymax_timelines_never_overlap(self, system):
        queries = make_queries(system, 4, gap_ms=30.0)
        result = run(system, BaymaxPolicy, queries, [be_app(system)])
        both = result.tc_timeline.intersection(result.cd_timeline)
        assert both.total() == pytest.approx(0.0, abs=1e-9)

    def test_kernel_recording_optional(self, system):
        queries = make_queries(system, 2, gap_ms=50.0)
        bare = run(system, TackerPolicy, queries, [be_app(system)])
        assert bare.executed == []
        queries = make_queries(system, 2, gap_ms=50.0)
        traced = run(
            system, TackerPolicy, queries, [be_app(system)],
            record_kernels=True,
        )
        assert len(traced.executed) > 0
        kinds = {e.kind for e in traced.executed}
        assert kinds <= {"lc", "be", "fused"}


class TestResultStatistics:
    def test_latency_stats(self, system):
        queries = make_queries(system, 10, gap_ms=25.0)
        result = run(system, BaymaxPolicy, queries, [be_app(system)])
        assert result.mean_latency_ms <= result.p99_latency_ms
        assert 0.0 <= result.qos_violation_rate <= 1.0

    def test_be_throughput_normalized_by_horizon(self, system):
        queries = make_queries(system, 5, gap_ms=40.0)
        result = run(system, BaymaxPolicy, queries, [be_app(system)])
        assert result.be_throughput == pytest.approx(
            result.total_be_work_ms / result.horizon_ms
        )


class TestBurstBehaviour:
    def test_burst_suppresses_be_work(self, system):
        """Eq. 9: with several queries queued, the binding slack goes
        negative and the scheduler stops feeding BE kernels."""
        instances = tuple(
            __import__("repro.runtime.query", fromlist=["KernelInstance"])
            .KernelInstance(system.library.get(n),
                            system.library.get(n).default_grid)
            for n in ("tgemm_l",) * 20
        )
        from repro.models.zoo import model_by_name
        from repro.runtime.query import Query

        burst = [
            Query(model_by_name("resnet50"), 0.0, instances)
            for _ in range(4)
        ]
        result = run(system, TackerPolicy, burst, [be_app(system)])
        solo = 20 * system.oracle.solo_ms(system.library.get("tgemm_l"))
        # Four queries of `solo` ms each arrive together: the later ones
        # cannot meet QoS, so BE admission must be heavily suppressed.
        assert result.total_be_work_ms < 0.2 * (4 * solo)

    def test_fifo_service_order(self, system):
        queries = make_queries(system, 4, gap_ms=1.0)
        run(system, BaymaxPolicy, queries, [])
        finishes = [q.finish_ms for q in queries]
        assert finishes == sorted(finishes)
