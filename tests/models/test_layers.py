"""Tests for layer lowering."""

import pytest

from repro.errors import ConfigError
from repro.kernels.gemm import CANONICAL_SHAPES
from repro.models.layers import (
    ConvShape,
    lower_conv,
    lower_im2col,
    lower_op,
)


class TestConvShape:
    def test_gemm_dimensions(self):
        conv = ConvShape(batch=8, height=14, width=14, cin=256,
                         cout=512, kernel=3)
        assert conv.gemm_m == 8 * 14 * 14
        assert conv.gemm_n == 512
        assert conv.gemm_k == 256 * 9

    def test_stride_shrinks_output(self):
        conv = ConvShape(2, 224, 224, 3, 64, 7, stride=2)
        assert conv.out_height == 112
        assert conv.gemm_m == 2 * 112 * 112

    def test_im2col_need(self):
        assert ConvShape(1, 8, 8, 16, 16, 3).needs_im2col
        assert not ConvShape(1, 8, 8, 16, 16, 1).needs_im2col

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigError):
            ConvShape(0, 8, 8, 16, 16, 3)


class TestLowerConv:
    def test_returns_canonical_name(self):
        conv = ConvShape(32, 56, 56, 64, 64, 1)
        assert lower_conv(conv) in CANONICAL_SHAPES

    def test_bigger_conv_never_maps_smaller(self):
        small = ConvShape(1, 7, 7, 32, 32, 1)
        huge = ConvShape(32, 112, 112, 64, 256, 3)
        names = list(CANONICAL_SHAPES)
        assert names.index(lower_conv(huge)) >= names.index(
            lower_conv(small))

    def test_log_space_choice(self):
        # A conv exactly at the geometric mean of s and m is ambiguous;
        # one just above it must map to m.
        import math

        s = CANONICAL_SHAPES["tgemm_s"].flops
        m = CANONICAL_SHAPES["tgemm_m"].flops
        target = math.sqrt(s * m) * 1.2
        # Construct a 1x1 conv with roughly that flop count.
        cout = max(1, round(target / (2 * 32 * 28 * 28 * 256)))
        conv = ConvShape(32, 28, 28, 256, cout, 1)
        assert lower_conv(conv) == "tgemm_m"


class TestLowerOps:
    def test_im2col_variant_by_volume(self):
        big = ConvShape(32, 112, 112, 64, 64, 3)
        tiny = ConvShape(1, 7, 7, 32, 32, 3)
        assert lower_im2col(big) == "im2col"
        assert lower_im2col(tiny) == "im2col_s"

    def test_elementwise_variants(self):
        assert lower_op("relu", 10_000_000) == "relu"
        assert lower_op("relu", 1_000) == "relu_s"
        assert lower_op("bn", 1_000) == "bn_s"
        assert lower_op("pooling", 10_000_000) == "pooling"
        assert lower_op("scale", 10) == "scale"

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError):
            lower_op("gelu", 100)
