"""Tests for the LC model zoo."""

import pytest

from repro.errors import ConfigError
from repro.models.cudnn import conversion_fraction
from repro.models.zoo import (
    LC_MODEL_FACTORIES,
    LC_MODELS,
    QueryKernel,
    model_by_name,
)

SPECS = {f.__name__: f() for f in LC_MODEL_FACTORIES}


class TestRoster:
    def test_six_models(self):
        assert set(LC_MODELS) == {
            "resnet50", "resnext", "vgg16", "vgg19", "inception",
            "densenet",
        }

    def test_paper_batch_sizes(self):
        batches = {name: spec.batch_size for name, spec in SPECS.items()}
        assert batches == {
            "resnet50": 32, "resnext": 24, "vgg16": 24,
            "vgg19": 16, "inception": 32, "densenet": 16,
        }

    def test_lookup_by_either_name(self):
        assert model_by_name("resnet50").name == "Resnet50"
        assert model_by_name("Resnet50").name == "Resnet50"
        with pytest.raises(ConfigError):
            model_by_name("alexnet")


class TestSequences:
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_mix_of_tc_and_cd(self, name):
        spec = SPECS[name]
        assert len(spec.tc_kernels) > 0
        assert len(spec.cd_kernels) > 0

    def test_conv_counts_match_architectures(self):
        def convs(spec):
            # Every TC kernel except the FC tail GEMMs maps to a conv;
            # counting GEMMs bounds the conv count from above.
            return len(spec.tc_kernels)

        assert convs(SPECS["resnet50"]) == 53 + 1  # 53 convs + FC
        assert convs(SPECS["vgg16"]) == 13 + 3
        assert convs(SPECS["vgg19"]) == 16 + 3
        assert convs(SPECS["densenet"]) == 120 + 1

    def test_fusable_fraction_matches_conversion_policy(self):
        for name, spec in SPECS.items():
            tc = spec.tc_kernels
            fusable = sum(1 for k in tc if k.fusable)
            # FC GEMMs stay on cuBLAS (never fusable); every fusable TC
            # kernel is a converted convolution, and the converted count
            # follows the model's conversion fraction exactly.
            n_fc = sum(
                1 for k in tc if k.kernel == "tgemm_s" and not k.fusable
            )
            n_convs = len(tc) - n_fc
            expected = round(conversion_fraction(spec.name) * n_convs)
            assert abs(fusable - expected) <= n_fc + 1

    def test_fc_gemms_never_fusable(self):
        # The classifier FC layers run on cuBLAS: black box to the fuser.
        for spec in SPECS.values():
            tail = spec.kernels[-1]
            assert tail.is_tc and not tail.fusable

    def test_vggs_convert_fewer(self):
        assert (
            SPECS["vgg16"].fusable_tc_fraction
            < SPECS["resnet50"].fusable_tc_fraction
        )

    def test_unconverted_convs_have_no_im2col(self):
        # A non-fusable (black-box cuDNN) conv is not preceded by im2col.
        for spec in SPECS.values():
            kernels = spec.kernels
            for i, qk in enumerate(kernels):
                if qk.is_tc and not qk.fusable and i > 0:
                    assert not kernels[i - 1].kernel.startswith("im2col")


class TestLatencyBudget:
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_solo_latency_within_qos(self, name, gpu, library, oracle):
        spec = SPECS[name]
        total = sum(
            oracle.solo_ms(library.get(k.kernel))
            for k in spec.kernels
        )
        assert 5.0 < total < 45.0  # leaves headroom under the 50 ms QoS

    def test_tc_time_dominates_for_conv_heavy_models(
        self, gpu, library, oracle
    ):
        for name in ("resnet50", "vgg16", "inception"):
            spec = SPECS[name]
            tc = sum(oracle.solo_ms(library.get(k.kernel))
                     for k in spec.tc_kernels)
            cd = sum(oracle.solo_ms(library.get(k.kernel))
                     for k in spec.cd_kernels)
            assert tc > cd


class TestQueryKernel:
    def test_is_tc_detection(self):
        assert QueryKernel("tgemm_l").is_tc
        assert QueryKernel("wmma_gemm").is_tc
        assert not QueryKernel("relu").is_tc


class TestBatchedVariant:
    def test_resnet50_batched_shapes_shrink(self):
        from repro.models.zoo import resnet50_batched

        small = resnet50_batched(4)
        large = resnet50_batched(32)
        assert small.batch_size == 4
        assert small.name == "Resnet50-b4"
        # Same architecture, so same kernel count...
        assert len(small.tc_kernels) == len(large.tc_kernels)
        # ...but the small batch lowers onto smaller GEMM buckets.
        order = ["tgemm_s", "tgemm_m", "tgemm_l", "tgemm_xl", "tgemm_xxl"]

        def rank_sum(spec):
            return sum(
                order.index(k.kernel) for k in spec.tc_kernels
                if k.kernel in order
            )

        assert rank_sum(small) < rank_sum(large)

    def test_conversion_is_deterministic(self):
        from repro.models.zoo import model_by_name

        a = model_by_name("resnet50")
        b = model_by_name("resnet50")
        assert [k.fusable for k in a.kernels] == [
            k.fusable for k in b.kernels
        ]
