"""Tests for the DNN-training BE jobs."""

import pytest

from repro.errors import ConfigError
from repro.models.training import (
    TRAINING_JOBS,
    all_training_jobs,
    training_job,
)
from repro.models.zoo import model_by_name


class TestRoster:
    def test_four_jobs(self):
        assert TRAINING_JOBS == ("Res-T", "VGG-T", "Incep-T", "Dense-T")

    def test_lookup_case_insensitive(self):
        assert training_job("res-t").name == "Res-T"
        with pytest.raises(ConfigError):
            training_job("BERT-T")

    def test_all_training_jobs(self):
        jobs = all_training_jobs()
        assert set(jobs) == set(TRAINING_JOBS)


class TestIterationStructure:
    def test_backward_roughly_doubles_gemms(self):
        job = training_job("Res-T")
        base = model_by_name("resnet50")
        fwd_gemms = len(base.tc_kernels)
        total_gemms = sum(1 for k in job.kernels if k.is_tc)
        assert total_gemms == 3 * fwd_gemms  # fwd + dgrad + wgrad

    def test_training_gemms_are_fusable(self):
        job = training_job("VGG-T")
        backward = job.kernels[len(model_by_name("vgg16").kernels):]
        assert all(k.fusable for k in backward if k.is_tc)

    def test_weight_updates_present(self):
        job = training_job("Dense-T")
        assert any(k.kernel == "weight_update" for k in job.kernels)

    def test_memory_intensive_classification(self):
        # Table II counts DNN training among memory-intensive BE apps.
        assert all(
            training_job(name).memory_intensive for name in TRAINING_JOBS
        )

    def test_iteration_longer_than_inference(self):
        job = training_job("Incep-T")
        base = model_by_name("inception")
        assert job.n_kernels > base.n_kernels
