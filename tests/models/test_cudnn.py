"""Tests for the cuDNN implementation model (Table III / Fig. 21)."""

import pytest

from repro.errors import ConfigError
from repro.models.cudnn import (
    CONVERSION_GAP_THRESHOLD,
    CUDNN_IMPLEMENTATIONS,
    conv_gap,
    conversion_fraction,
    conversion_report,
    converted_indices,
    parse_impl_name,
    resnet50_conv_gaps,
)


class TestTableIII:
    def test_twelve_implementations(self):
        assert len(CUDNN_IMPLEMENTATIONS) == 12
        turing = [i for i in CUDNN_IMPLEMENTATIONS if i.arch == "turing"]
        volta = [i for i in CUDNN_IMPLEMENTATIONS if i.arch == "volta"]
        assert len(turing) == 7 and len(volta) == 5

    def test_paper_values_sampled(self):
        t2 = next(i for i in CUDNN_IMPLEMENTATIONS if i.name == "T2")
        assert t2.shared_mem_pct == 100.0
        assert t2.fp32_pct == 0.31
        v5 = next(i for i in CUDNN_IMPLEMENTATIONS if i.name == "V5")
        assert v5.shared_mem_pct == 51.2
        assert v5.dram_bandwidth_pct == 30.2

    def test_paper_observations_hold(self):
        # "All the implementations have DRAM bandwidth usage lower than
        # 71%, and do not use FP32 cores."
        assert all(
            i.dram_bandwidth_pct < 71.0 for i in CUDNN_IMPLEMENTATIONS
        )
        assert all(i.fp32_pct < 1.0 for i in CUDNN_IMPLEMENTATIONS)
        assert all(i.uses_tensor_cores for i in CUDNN_IMPLEMENTATIONS)

    def test_idle_resources_everywhere_except_full_shmem(self):
        assert all(
            i.idle_explicit_resources for i in CUDNN_IMPLEMENTATIONS
        )


class TestNameParsing:
    def test_fig22_example(self):
        info = parse_impl_name(
            "volta_h884cudnn_256x64_ldg8_relu_exp_medium_nhwc_tn_v1"
        )
        assert info == {
            "arch": "volta", "tensor_core": "884", "tile": "256x64"
        }

    def test_turing_1688_marker(self):
        info = parse_impl_name("turing_h1688cudnn_128x128_ldg8_nt_v1")
        assert info["tensor_core"] == "1688"

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_impl_name("gemm")


class TestGapModel:
    def test_deterministic(self):
        assert conv_gap("resnet50", 7) == conv_gap("resnet50", 7)

    def test_fig21_fraction_under_threshold(self):
        gaps = resnet50_conv_gaps(53)
        below = sum(1 for g in gaps if g < CONVERSION_GAP_THRESHOLD)
        # Paper: gap < 15% for 39.6% of Resnet50's convolutions.
        assert below / 53 == pytest.approx(0.396, abs=0.06)

    def test_gaps_bounded(self):
        assert all(0 < g < 0.8 for g in resnet50_conv_gaps(53))


class TestConversionPolicy:
    def test_fractions_match_paper(self):
        assert conversion_fraction("VGG16") == 0.365
        assert conversion_fraction("vgg19") == 0.365
        assert conversion_fraction("Resnet50") == 0.554
        assert conversion_fraction("Inception") == 0.554

    def test_converted_count(self):
        converted = converted_indices("resnet50", 53)
        assert len(converted) == round(0.554 * 53)

    def test_lowest_gap_layers_convert_first(self):
        converted = converted_indices("resnet50", 53)
        gaps = resnet50_conv_gaps(53)
        worst_converted = max(gaps[i] for i in converted)
        best_skipped = min(
            gaps[i] for i in range(53) if i not in converted
        )
        assert worst_converted <= best_skipped

    def test_end_to_end_loss_under_two_percent(self):
        report = conversion_report("resnet50", 53)
        assert report["end_to_end_loss"] < 0.02
        assert report["converted_fraction"] == pytest.approx(0.554,
                                                             abs=0.01)
