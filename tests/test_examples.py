"""The example scripts run end to end.

The examples are documentation; a broken example is a broken promise,
so the light ones are executed as subprocesses.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "overlap rate" in result.stdout
        assert "bar.sync" not in result.stderr

    def test_fusion_explorer_default_pair(self):
        result = run_example("fusion_explorer.py")
        assert result.returncode == 0, result.stderr
        assert "verdict: fuse" in result.stdout
        assert "bar.sync" in result.stdout

    def test_fusion_explorer_fat_kernel(self):
        result = run_example("fusion_explorer.py", "tgemm_l", "tpacf")
        assert result.returncode == 0, result.stderr
        assert "Stream + PTB  : 0.00" in result.stdout

    def test_predictor_accuracy(self):
        result = run_example("predictor_accuracy.py")
        assert result.returncode == 0, result.stderr
        assert "opportune load ratio" in result.stdout
        assert "worst two-stage prediction error" in result.stdout

    def test_cluster_deployment(self):
        result = run_example("cluster_deployment.py")
        assert result.returncode == 0, result.stderr
        assert "staged libraries per node" in result.stdout
        assert "serving" in result.stdout
        assert "fleet: BE work" in result.stdout
