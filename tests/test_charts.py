"""Tests for the text chart renderers."""

import pytest

from repro.errors import ConfigError
from repro.experiments.charts import bar_chart, scatter, timeline
from repro.runtime.server import ExecutedKernel


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_unit_suffix(self):
        assert "%" in bar_chart(["x"], [42.0], unit="%")

    def test_baseline_marker(self):
        text = bar_chart(["x"], [10.0], width=20, baseline=5.0)
        assert "|" not in text.splitlines()[0][:12]  # inside the bar
        # The marker would land where the bar already is; with a value
        # below the baseline the marker shows.
        text = bar_chart(["x"], [2.0], width=20, baseline=10.0)
        assert "|" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigError):
            bar_chart([], [])
        with pytest.raises(ConfigError):
            bar_chart(["a"], [0.0])


class TestScatter:
    def test_corner_points(self):
        text = scatter([(0, 0), (1, 1)], width=11, height=6)
        lines = text.splitlines()
        assert lines[-2][0] == "*"   # bottom-left
        assert lines[0][10] == "*"   # top-right

    def test_axis_labels(self):
        text = scatter([(1.0, 2.0), (3.0, 4.0)])
        assert "x: 1 .. 3" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            scatter([])


class TestTimeline:
    def kernels(self):
        return [
            ExecutedKernel(0.0, 1.0, "lc", "tgemm", 1.0, 0.0),
            ExecutedKernel(1.0, 2.0, "be", "fft", 1.0, 2.0),
            ExecutedKernel(2.0, 3.0, "fused", "fused_k", 3.0, 3.0),
        ]

    def test_rows_mark_unit_activity(self):
        text = timeline(self.kernels(), width=30)
        rows = text.splitlines()
        tc_row = rows[0].split("|")[1]
        cd_row = rows[1].split("|")[1]
        assert "T" in tc_row and "F" in tc_row
        assert "C" in cd_row and "F" in cd_row
        # The TC row is idle while only the CD kernel runs.
        third = 30 // 3
        assert "T" not in tc_row[third + 1:2 * third]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            timeline([])
