"""Tests for the command-line interface."""

import json
import sys

import pytest

from repro.cli import main


class TestInformational:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "tgemm_l" in out and "mriq" in out
        assert "30 kernels" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Resnet50" in out and "Densenet" in out


class TestFuse:
    def test_fusable_pair(self, capsys):
        assert main(["fuse", "tgemm_l", "fft"]) == 0
        out = capsys.readouterr().out
        assert "fused at ratio" in out

    def test_source_flag(self, capsys):
        main(["fuse", "tgemm_l", "fft", "--source"])
        assert "bar.sync" in capsys.readouterr().out


class TestRunPair(object):
    def test_run_pair(self, capsys):
        code = main(["run-pair", "vgg16", "mriq", "--queries", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "improvement over Baymax" in out
        assert "QoS satisfied: yes" in out


class TestTrace:
    def test_trace_export(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main([
            "trace", "vgg16", "mriq", str(path), "--queries", "4"
        ])
        assert code == 0
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]

    def test_v100_preset_flag(self, capsys):
        assert main(["--gpu", "v100", "kernels"]) == 0
        assert "V100" in capsys.readouterr().out


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def clean_telemetry(self, monkeypatch):
        """The CLI flips process-global switches; contain the blast."""
        from repro.telemetry import core

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        core.reset()
        yield
        core.reset()

    def test_metrics_command(self, tmp_path, capsys):
        decisions = tmp_path / "decisions.jsonl"
        code = main([
            "metrics", "vgg16", "mriq", "--queries", "6",
            "--decisions", str(decisions),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_runs_total counter" in out
        assert 'repro_runs_total{policy="tacker"} 1' in out
        from repro.telemetry import validate_decision_jsonl

        assert validate_decision_jsonl(str(decisions)) > 0

    def test_metrics_json_output(self, capsys):
        assert main(["metrics", "vgg16", "mriq", "--queries", "6",
                     "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "repro_runs_total" in snapshot

    def test_telemetry_flag_prints_summary(self, capsys):
        code = main([
            "--telemetry", "run-pair", "vgg16", "mriq", "--queries", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry:" in out and "metric families" in out

    def test_trace_cluster_mode(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        code = main([
            "--telemetry", "trace", "vgg16", "mriq", str(path),
            "--queries", "4", "--nodes", "2",
        ])
        assert code == 0
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["otherData"]["n_nodes"] == 2
        assert {e["pid"] for e in trace["traceEvents"]} == {1, 2}


class TestPolicies:
    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("tacker", "baymax", "hfuse", "spatial", "gpuos",
                     "multifuse"):
            assert name in out
        assert "repro.runtime.policies.tacker" in out

    def test_run_scenario_rejects_unknown_policy_early(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="did you mean"):
            main(["run-scenario", "steady", "--quick",
                  "--policy", "tackr"])

    def test_run_tournament_quick(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        out_path = tmp_path / "tournament.txt"
        code = main([
            "run-tournament", "--quick", "--scenario", "steady",
            "--policy", "tacker", "--policy", "baymax",
            "--out", str(out_path),
        ])
        assert code == 0
        text = out_path.read_text()
        assert "steady" in text and "tacker" in text
        assert "zoo_beats_baymax_cells" in text


class TestParsing:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_gpu(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["--gpu", "a100", "kernels"])


class TestPeakRss:
    """The --max-rss-mb gate must read ru_maxrss in platform units."""

    class _Usage:
        def __init__(self, ru_maxrss):
            self.ru_maxrss = ru_maxrss

    def test_linux_reports_kilobytes(self, monkeypatch):
        import resource

        from repro.cli import _peak_rss_mb

        monkeypatch.setattr(sys, "platform", "linux")
        monkeypatch.setattr(
            resource, "getrusage", lambda who: self._Usage(512 * 1024)
        )
        assert _peak_rss_mb() == pytest.approx(512.0)

    def test_darwin_reports_bytes(self, monkeypatch):
        import resource

        from repro.cli import _peak_rss_mb

        monkeypatch.setattr(sys, "platform", "darwin")
        monkeypatch.setattr(
            resource,
            "getrusage",
            lambda who: self._Usage(512 * 1024 * 1024),
        )
        # same physical 512 MB peak, darwin's bytes convention
        assert _peak_rss_mb() == pytest.approx(512.0)

    def test_same_peak_reads_identically_across_platforms(self, monkeypatch):
        """The regression: a darwin peak read with the linux divisor
        would report 1024x too large and trip any sane gate."""
        import resource

        from repro.cli import _peak_rss_mb

        physical_mb = 100.0
        readings = {}
        for platform, maxrss in (
            ("linux", physical_mb * 1024),
            ("darwin", physical_mb * 1024 * 1024),
        ):
            monkeypatch.setattr(sys, "platform", platform)
            monkeypatch.setattr(
                resource, "getrusage", lambda who, m=maxrss: self._Usage(m)
            )
            readings[platform] = _peak_rss_mb()
        assert readings["linux"] == pytest.approx(readings["darwin"])
        assert readings["linux"] == pytest.approx(physical_mb)


class TestRunAutoscale:
    def test_smoke(self, capsys):
        code = main([
            "run-autoscale", "diurnal", "--scaler", "static",
            "--rate-nodes", "2", "--span-ms", "4000",
            "--epoch-ms", "2000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "scaler static" in out
        assert "fleet:" in out and "node-s" in out

    def test_crash_flag(self, capsys):
        code = main([
            "run-autoscale", "diurnal", "--scaler", "static",
            "--rate-nodes", "2", "--span-ms", "4000",
            "--epoch-ms", "2000",
            "--crash", "0@1500",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "rerouted" in out
