"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestInformational:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "tgemm_l" in out and "mriq" in out
        assert "30 kernels" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Resnet50" in out and "Densenet" in out


class TestFuse:
    def test_fusable_pair(self, capsys):
        assert main(["fuse", "tgemm_l", "fft"]) == 0
        out = capsys.readouterr().out
        assert "fused at ratio" in out

    def test_source_flag(self, capsys):
        main(["fuse", "tgemm_l", "fft", "--source"])
        assert "bar.sync" in capsys.readouterr().out


class TestRunPair(object):
    def test_run_pair(self, capsys):
        code = main(["run-pair", "vgg16", "mriq", "--queries", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "improvement over Baymax" in out
        assert "QoS satisfied: yes" in out


class TestTrace:
    def test_trace_export(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main([
            "trace", "vgg16", "mriq", str(path), "--queries", "4"
        ])
        assert code == 0
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]

    def test_v100_preset_flag(self, capsys):
        assert main(["--gpu", "v100", "kernels"]) == 0
        assert "V100" in capsys.readouterr().out


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def clean_telemetry(self, monkeypatch):
        """The CLI flips process-global switches; contain the blast."""
        from repro.telemetry import core

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        core.reset()
        yield
        core.reset()

    def test_metrics_command(self, tmp_path, capsys):
        decisions = tmp_path / "decisions.jsonl"
        code = main([
            "metrics", "vgg16", "mriq", "--queries", "6",
            "--decisions", str(decisions),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_runs_total counter" in out
        assert 'repro_runs_total{policy="tacker"} 1' in out
        from repro.telemetry import validate_decision_jsonl

        assert validate_decision_jsonl(str(decisions)) > 0

    def test_metrics_json_output(self, capsys):
        assert main(["metrics", "vgg16", "mriq", "--queries", "6",
                     "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "repro_runs_total" in snapshot

    def test_telemetry_flag_prints_summary(self, capsys):
        code = main([
            "--telemetry", "run-pair", "vgg16", "mriq", "--queries", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry:" in out and "metric families" in out

    def test_trace_cluster_mode(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        code = main([
            "--telemetry", "trace", "vgg16", "mriq", str(path),
            "--queries", "4", "--nodes", "2",
        ])
        assert code == 0
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["otherData"]["n_nodes"] == 2
        assert {e["pid"] for e in trace["traceEvents"]} == {1, 2}


class TestParsing:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_gpu(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["--gpu", "a100", "kernels"])
