"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestInformational:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "tgemm_l" in out and "mriq" in out
        assert "30 kernels" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Resnet50" in out and "Densenet" in out


class TestFuse:
    def test_fusable_pair(self, capsys):
        assert main(["fuse", "tgemm_l", "fft"]) == 0
        out = capsys.readouterr().out
        assert "fused at ratio" in out

    def test_source_flag(self, capsys):
        main(["fuse", "tgemm_l", "fft", "--source"])
        assert "bar.sync" in capsys.readouterr().out


class TestRunPair(object):
    def test_run_pair(self, capsys):
        code = main(["run-pair", "vgg16", "mriq", "--queries", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "improvement over Baymax" in out
        assert "QoS satisfied: yes" in out


class TestTrace:
    def test_trace_export(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main([
            "trace", "vgg16", "mriq", str(path), "--queries", "4"
        ])
        assert code == 0
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]

    def test_v100_preset_flag(self, capsys):
        assert main(["--gpu", "v100", "kernels"]) == 0
        assert "V100" in capsys.readouterr().out


class TestParsing:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_gpu(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["--gpu", "a100", "kernels"])
