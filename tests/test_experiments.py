"""Smoke tests for the experiment harnesses (quick configurations).

The full sweeps live in ``benchmarks/``; these tests check that every
harness runs, produces well-formed rows/summaries, and preserves its
experiment's defining property at reduced scale.
"""

import pytest

from repro.experiments import (
    ablations,
    fig02_motivation,
    fig03_direct_fusion,
    fig10_load_ratio,
    fig11_fixed_ratio,
    fig15_timelines,
    fig17_pred_single,
    fig18_pred_fused,
    fig20_corun,
    fig21_im2col,
    tab01_microbench,
    tab03_cudnn,
    tab_overhead,
)
from repro.experiments.common import format_table, geometric_spacing


class TestCommonHelpers:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in lines[2]

    def test_geometric_spacing(self):
        points = geometric_spacing(1.0, 8.0, 4)
        assert points[0] == pytest.approx(1.0)
        assert points[-1] == pytest.approx(8.0)
        ratios = [b / a for a, b in zip(points, points[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)


class TestMicroExperiments:
    def test_tab01(self):
        result = tab01_microbench.run()
        assert result.summary()["bench_a"] < 1.2
        assert len(result.rows()) == 3

    def test_fig03(self):
        result = fig03_direct_fusion.run()
        assert result.summary()["mean_normalized"] > 1.5

    def test_fig10(self):
        result = fig10_load_ratio.run(points=6)
        summary = result.summary()
        assert summary["after_slope"] > summary["before_slope"]

    def test_fig11(self):
        result = fig11_fixed_ratio.run()
        assert result.summary()["min_r_squared"] > 0.98

    def test_tab03(self):
        result = tab03_cudnn.run()
        assert result.summary()["n_implementations"] == 12

    def test_fig21(self):
        result = fig21_im2col.run()
        assert result.summary()["worst_loss"] < 0.02
        assert len(result.resnet50_normalized) == 53

    def test_overhead(self):
        result = tab_overhead.run()
        assert result.modeled_scheduling_ms > result.modeled_static_ms
        assert result.measured_tacker_decision_us > 0


class TestPredictionExperiments:
    def test_fig17_subset(self):
        result = fig17_pred_single.run(kernels=("fft", "relu"))
        assert result.summary()["worst_kernel_max_error"] < 0.05

    def test_fig18_subset(self):
        result = fig18_pred_fused.run(pairs=(("tgemm_l", "fft"),))
        summary = result.summary()
        assert summary["worst_before_inflection"] < 0.08
        assert summary["worst_after_inflection"] < 0.08


class TestServerExperiments:
    def test_fig02_single_pair(self):
        result = fig02_motivation.run(
            lc_names=("resnet50",), be_names=("fft",), n_queries=8
        )
        summary = result.summary()
        assert summary["mean_stacked"] > 0.95
        assert summary["max_both_active"] < 0.02

    def test_fig15_small(self):
        result = fig15_timelines.run(n_queries=8)
        assert result.co_active_fraction("fft") > 0
        assert len(result.segments("fft", limit=5)) == 5

    def test_fig20_shape(self):
        result = fig20_corun.run()
        summary = result.summary()
        assert summary["tacker_wins"] == summary["n_pairs"]


class TestAblations:
    def test_ratio(self):
        result = ablations.ratio_ablation(
            pairs=(("tgemm_l", "fft"), ("tgemm_l", "cp"))
        )
        assert result.summary()["mean_flexible_over_naive"] > 1.0

    def test_predictor(self):
        result = ablations.predictor_ablation()
        summary = result.summary()
        assert summary["single_lr_max_error"] > summary[
            "two_stage_max_error"
        ]

    def test_policy(self):
        result = ablations.policy_ablation(n_queries=10)
        summary = result.summary()
        assert summary["fusion+reorder_vs_reorder"] >= 1.0


class TestExtensionExperiments:
    def test_energy(self):
        from repro.experiments import energy

        result = energy.run(n_queries=10)
        summary = result.summary()
        assert summary["energy_saving"] > 0
        assert summary["tacker_watts"] <= 251.0  # clamped at the limit

    def test_arrival_study(self):
        from repro.experiments import arrival_study

        result = arrival_study.run(models=("densenet",))
        stats = result.per_model["Densenet"]
        assert stats["poisson_peak_qps"] < stats["paced_peak_qps"]

    def test_multi_tenant(self):
        from repro.experiments import multi_tenant

        result = multi_tenant.run(
            lc_names=("vgg16", "densenet"), be_names=("mriq",),
            n_queries=8,
        )
        assert result.summary()["n_services"] == 2

    def test_batch_sensitivity(self):
        from repro.experiments import batch_sensitivity

        result = batch_sensitivity.run(batches=(8, 32), n_queries=10)
        summary = result.summary()
        assert summary["small_batch"] == 8
        assert summary["improvement_large"] >= 0


class TestCommonInfrastructure:
    def test_quick_mode_env(self, monkeypatch):
        from repro.experiments import common

        monkeypatch.delenv(common.QUICK_ENV, raising=False)
        assert not common.quick_mode()
        assert common.default_queries(100, 10) == 100
        monkeypatch.setenv(common.QUICK_ENV, "1")
        assert common.quick_mode()
        assert common.default_queries(100, 10) == 10
        monkeypatch.setenv(common.QUICK_ENV, "0")
        assert not common.quick_mode()

    def test_get_system_cached_per_gpu(self):
        from repro.experiments.common import get_system

        assert get_system("rtx2080ti") is get_system("RTX2080Ti")
        assert get_system("v100") is not get_system("rtx2080ti")

    def test_fig14_result_cache(self):
        from repro.experiments import fig14_throughput

        a = fig14_throughput.run(
            lc_names=("densenet",), be_names=("mriq",), n_queries=6
        )
        b = fig14_throughput.run(
            lc_names=("densenet",), be_names=("mriq",), n_queries=6
        )
        assert a is b  # same cache entry, no re-run

    def test_fig14_outcomes_keyed_on_requested_pair(self):
        from repro.experiments import fig14_throughput

        result = fig14_throughput.run(
            lc_names=("densenet",), be_names=("mriq",), n_queries=6
        )
        assert set(result.outcomes) == {("densenet", "mriq")}

    def test_format_table_widens_for_long_cells(self):
        long_name = "(improvement %)"
        text = format_table(["service", "p99 ms"], [[long_name, 4.8]])
        header, sep, row = text.splitlines()
        # Every line shares one width; the long cell pushes its whole
        # column out instead of colliding with its neighbour.
        assert len(header) == len(sep) == len(row)
        assert row.startswith(long_name)
        assert row.endswith("4.800")

    def test_perf_counters_track_oracle(self):
        from repro.experiments import common

        baseline = common.perf_counters()
        timed = common.timed_run(
            lambda: common.get_system("rtx2080ti").oracle.solo_cycles(
                common.get_system("rtx2080ti").library.get("mriq")
            )
        )
        assert timed.wall_s >= 0.0
        total = timed.counters
        assert (
            total.oracle_hits + total.oracle_misses
            + total.oracle_persistent_hits >= 1
        )
        assert "wall" in timed.perf_line()
        after = common.perf_counters().delta(baseline)
        assert after.oracle_misses >= 0

    def test_perf_counters_break_down_fastpath_dispatch(self, gpu):
        from repro.experiments import common
        from repro.gpusim import fastpath
        from repro.gpusim.gpu import clear_result_memo, simulate_launch
        from repro.kernels.parboil import mriq

        fastpath.STATS.reset()
        clear_result_memo()
        before = common.perf_counters()
        simulate_launch(mriq().launch(1000), gpu)
        delta = common.perf_counters().delta(before)
        assert delta.fastpath_fast == 1
        assert delta.fastpath_by_shape == {fastpath.SHAPE_PLAIN: 1}
        assert delta.fastpath_rejects == {}
        flat = delta.as_dict()
        assert flat[f"fastpath_fast[{fastpath.SHAPE_PLAIN}]"] == 1

    def test_perf_counters_break_down_fastpath_rejects(
        self, gpu, monkeypatch
    ):
        from repro.experiments import common
        from repro.gpusim import fastpath
        from repro.gpusim.gpu import clear_result_memo, simulate_launch
        from repro.kernels.parboil import mriq

        fastpath.STATS.reset()
        clear_result_memo()
        monkeypatch.setenv(fastpath.FASTPATH_ENV, "0")
        before = common.perf_counters()
        simulate_launch(mriq().launch(1000), gpu)
        delta = common.perf_counters().delta(before)
        assert delta.fastpath_engine == 1
        assert delta.fastpath_rejects == {fastpath.REASON_DISABLED: 1}
        assert "rejects: disabled=1" in common.TimedResult(
            value=None, wall_s=0.0, counters=delta
        ).perf_line()

    def test_publish_perf_metrics_exports_breakdowns(self, gpu):
        from repro.experiments import common
        from repro.gpusim import fastpath
        from repro.gpusim.gpu import clear_result_memo, simulate_launch
        from repro.kernels.parboil import mriq
        from repro.telemetry.registry import MetricsRegistry

        fastpath.STATS.reset()
        clear_result_memo()
        simulate_launch(mriq().launch(1000), gpu)
        registry = MetricsRegistry()
        common.publish_perf_metrics(registry)
        exposition = registry.prometheus_text()
        assert "repro_fastpath_shape_total" in exposition
        assert f'shape="{fastpath.SHAPE_PLAIN}"' in exposition


class TestParallelSweeps:
    def test_worker_count_resolution(self, monkeypatch):
        from repro.experiments import common

        monkeypatch.delenv(common.WORKERS_ENV, raising=False)
        monkeypatch.delenv(common._IN_WORKER_ENV, raising=False)
        assert common.worker_count() == 1
        assert common.worker_count(3) == 3
        monkeypatch.setenv(common.WORKERS_ENV, "4")
        assert common.worker_count() == 4
        assert common.worker_count(2) == 2  # explicit arg wins
        monkeypatch.setenv(common.WORKERS_ENV, "auto")
        assert common.worker_count() >= 1
        monkeypatch.setenv(common.WORKERS_ENV, "nonsense")
        assert common.worker_count() == 1
        # Workers never nest pools.
        monkeypatch.setenv(common.WORKERS_ENV, "8")
        monkeypatch.setenv(common._IN_WORKER_ENV, "1")
        assert common.worker_count() == 1

    def test_parallel_map_serial_path(self):
        from repro.experiments.common import parallel_map

        assert parallel_map(str.upper, ["a", "b"], workers=1) == ["A", "B"]

    def test_parallel_fig14_identical_to_serial(self):
        """The acceptance bar: a parallel sweep is byte-identical to a
        serial one — same outcomes, same formatted table."""
        from repro.experiments import fig14_throughput

        lc, be = ("densenet", "vgg16"), ("mriq", "fft")
        serial = fig14_throughput.run(
            lc_names=lc, be_names=be, n_queries=6, workers=1
        )
        fig14_throughput.clear_cache()
        parallel = fig14_throughput.run(
            lc_names=lc, be_names=be, n_queries=6, workers=2
        )
        assert list(parallel.outcomes) == list(serial.outcomes)
        headers = ["LC", "BE", "improvement %", "tacker p99", "baymax p99"]
        assert format_table(headers, parallel.rows()) == format_table(
            headers, serial.rows()
        )
        assert parallel.summary() == serial.summary()
