"""Tests for per-kernel duration models (the Fig. 17 machinery)."""

import pytest

from repro.errors import PredictionError
from repro.kernels.parboil import fft, mriq
from repro.predictor.kernel_model import (
    DEFAULT_NOISE,
    KernelDurationModel,
    ProfileNoise,
)


class TestProfileNoise:
    def test_deterministic(self):
        noise = ProfileNoise()
        assert noise.factor("fft", 100) == noise.factor("fft", 100)

    def test_bounded_by_scale(self):
        noise = ProfileNoise(scale=0.02)
        factors = [noise.factor("fft", g) for g in range(200)]
        assert all(0.98 <= f <= 1.02 for f in factors)

    def test_varies_across_grids(self):
        noise = ProfileNoise()
        assert len({noise.factor("fft", g) for g in range(20)}) > 10

    def test_zero_scale_is_exact(self):
        noise = ProfileNoise(scale=0.0)
        assert noise.observe("fft", 1, 1234.5) == 1234.5


class TestTraining:
    def test_untrained_predict_raises(self):
        model = KernelDurationModel(fft())
        assert not model.is_trained
        with pytest.raises(PredictionError):
            model.predict(100)

    def test_training_fits_line(self, gpu):
        model = KernelDurationModel(fft())
        line = model.train(gpu)
        assert model.is_trained
        assert line.slope > 0  # more blocks take longer

    def test_custom_grids(self, gpu):
        model = KernelDurationModel(mriq())
        model.train(gpu, grids=[1000, 2000, 4000])
        assert model.is_trained


class TestAccuracy:
    def test_fig17_error_bound(self, gpu):
        """Fig. 17: PTB-kernel LR prediction within ~3%."""
        kernel = fft()
        model = KernelDurationModel(kernel)
        model.train(gpu)
        grids = [round(kernel.default_grid * s) for s in (0.4, 0.8, 1.3, 1.8)]
        report = model.evaluate(gpu, grids)
        assert report["mean_error"] < 0.03
        assert report["max_error"] < 0.05

    def test_noise_floor_visible(self, gpu):
        """Errors are non-zero: the harness measures against noisy
        observations, like profiling on real silicon."""
        kernel = fft()
        model = KernelDurationModel(kernel)
        model.train(gpu)
        report = model.evaluate(
            gpu, [round(kernel.default_grid * s) for s in (0.6, 1.4)]
        )
        assert report["mean_error"] > 0.0

    def test_prediction_clamped_non_negative(self, gpu):
        model = KernelDurationModel(fft())
        model.train(gpu)
        assert model.predict(0) >= 0.0

    def test_default_noise_is_realistic(self):
        assert 0.005 <= DEFAULT_NOISE <= 0.03
