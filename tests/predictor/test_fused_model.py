"""Tests for the two-stage fused-kernel duration model (Section VI)."""

import pytest

from repro.errors import PredictionError
from repro.fusion.ptb import transform
from repro.fusion.search import FusionSearch
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import fft
from repro.predictor.fused_model import (
    PROFILE_LOAD_RATIOS,
    UPDATE_THRESHOLD,
    FusedDurationModel,
)
from repro.predictor.kernel_model import KernelDurationModel


@pytest.fixture(scope="module")
def fused_kernel(gpu):
    tc = transform(canonical_gemms()["tgemm_l"], gpu)
    cd = transform(fft(), gpu)
    return FusionSearch(gpu).search(tc, cd).best.fused


@pytest.fixture(scope="module")
def trained(gpu, fused_kernel):
    tc_model = KernelDurationModel(fused_kernel.tc.ir)
    tc_model.train(gpu)
    cd_model = KernelDurationModel(fused_kernel.cd.ir)
    cd_model.train(gpu)
    model = FusedDurationModel(fused_kernel, tc_model, cd_model)
    model.train(gpu)
    return model


class TestTraining:
    def test_profile_ratios_are_papers(self):
        assert PROFILE_LOAD_RATIOS == (0.10, 0.20, 1.80, 1.90)

    def test_untrained_raises(self, gpu, fused_kernel):
        tc_model = KernelDurationModel(fused_kernel.tc.ir)
        cd_model = KernelDurationModel(fused_kernel.cd.ir)
        model = FusedDurationModel(fused_kernel, tc_model, cd_model)
        with pytest.raises(PredictionError):
            model.train(gpu)  # component models untrained
        with pytest.raises(PredictionError):
            model.predict(1.0, 1.0)

    def test_trained_exposes_inflection(self, trained):
        assert trained.is_trained
        # Both branches finish together somewhere around ratio ~1.
        assert 0.3 < trained.opportune_load_ratio < 1.8


class TestShape:
    def test_gentle_slope_before_inflection(self, trained):
        """Fig. 10: before the inflection, CD growth is mostly absorbed
        by the co-run — the slope is far below the post-inflection 1."""
        r = trained.opportune_load_ratio
        slope = (
            trained.predict_norm(r * 0.9) - trained.predict_norm(r * 0.2)
        ) / (r * 0.7)
        assert slope < 0.5

    def test_slope_one_after_inflection(self, trained):
        """Fig. 10: past the inflection, CD growth converts 1:1 into
        fused duration growth."""
        y1 = trained.predict_norm(2.0)
        y2 = trained.predict_norm(3.0)
        assert (y2 - y1) == pytest.approx(1.0, abs=0.15)

    def test_never_faster_than_components(self, trained):
        for ratio in (0.1, 0.5, 1.0, 1.5, 2.5):
            assert trained.predict_norm(ratio) >= max(1.0, ratio)

    def test_stage_classification(self, trained):
        r = trained.opportune_load_ratio
        assert trained.stage_for(r * 0.5) == "before-inflection"
        assert trained.stage_for(r * 1.5) == "after-inflection"

    def test_prediction_scales_with_tc_duration(self, trained):
        """Fig. 11: at fixed load ratio, duration is linear in Xori_tc."""
        one = trained.predict(1000.0, 500.0)
        two = trained.predict(2000.0, 1000.0)
        assert two == pytest.approx(2 * one)

    def test_rejects_bad_inputs(self, trained):
        with pytest.raises(PredictionError):
            trained.predict(0.0, 1.0)
        with pytest.raises(PredictionError):
            trained.predict_norm(-0.5)


class TestAccuracy:
    def test_fig18_error_bound(self, gpu, trained):
        """Fig. 18: both stages predict within 8%."""
        tc_grid = trained.fused.tc.ir.default_grid
        errors = []
        for ratio in (0.3, 0.6, 0.9, 1.3, 1.6, 2.2):
            cd_grid = trained._cd_grid_for_ratio(tc_grid, ratio, gpu)
            actual = trained.measure(gpu, tc_grid, cd_grid)
            xtc = trained.tc_model.measure(gpu, tc_grid)
            xcd = trained.cd_model.measure(gpu, cd_grid)
            predicted = trained.predict(xtc, xcd)
            errors.append(abs(predicted - actual) / actual)
        assert max(errors) < 0.08


class TestOnlineUpdate:
    def test_small_error_does_not_refit(self, gpu, trained):
        xtc = trained.tc_model.measure(gpu, trained.fused.tc.ir.default_grid)
        predicted = trained.predict(xtc, 0.5 * xtc)
        before = trained.update_count
        error = trained.observe(xtc, 0.5 * xtc, predicted * 1.01)
        assert error < UPDATE_THRESHOLD
        assert trained.update_count == before

    def test_large_error_triggers_refit(self, gpu, fused_kernel):
        tc_model = KernelDurationModel(fused_kernel.tc.ir)
        tc_model.train(gpu)
        cd_model = KernelDurationModel(fused_kernel.cd.ir)
        cd_model.train(gpu)
        model = FusedDurationModel(fused_kernel, tc_model, cd_model)
        model.train(gpu)
        xtc = tc_model.measure(gpu, fused_kernel.tc.ir.default_grid)
        predicted = model.predict(xtc, 0.5 * xtc)
        error = model.observe(xtc, 0.5 * xtc, predicted * 1.5)
        assert error > UPDATE_THRESHOLD
        assert model.update_count == 1
