"""Tests for duration-model serialization."""

import pytest

from repro.errors import PredictionError
from repro.fusion.ptb import transform
from repro.fusion.search import FusionSearch
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import fft, mriq
from repro.predictor.fused_model import FusedDurationModel
from repro.predictor.kernel_model import KernelDurationModel
from repro.predictor.persistence import (
    FORMAT,
    export_bundle,
    export_fused_model,
    export_kernel_model,
    import_fused_model,
    import_kernel_model,
    load_bundle,
    save_bundle,
)


@pytest.fixture(scope="module")
def fused_setup(gpu):
    tc_ptb = transform(canonical_gemms()["tgemm_l"], gpu)
    cd_ptb = transform(fft(), gpu)
    fused = FusionSearch(gpu).search(tc_ptb, cd_ptb).best.fused
    tc_model = KernelDurationModel(fused.tc.ir)
    tc_model.train(gpu)
    cd_model = KernelDurationModel(fused.cd.ir)
    cd_model.train(gpu)
    model = FusedDurationModel(fused, tc_model, cd_model)
    model.train(gpu)
    return fused, tc_model, cd_model, model


class TestKernelModelRoundtrip:
    def test_predictions_survive(self, gpu):
        original = KernelDurationModel(mriq())
        original.train(gpu)
        data = export_kernel_model(original)
        restored = import_kernel_model(mriq(), data)
        for grid in (500, 2000, 8000):
            assert restored.predict(grid) == original.predict(grid)

    def test_kernel_mismatch_rejected(self, gpu):
        original = KernelDurationModel(mriq())
        original.train(gpu)
        with pytest.raises(PredictionError, match="exported for"):
            import_kernel_model(fft(), export_kernel_model(original))


class TestFusedModelRoundtrip:
    def test_predictions_survive(self, gpu, fused_setup):
        fused, tc_model, cd_model, model = fused_setup
        data = export_fused_model(model)
        restored = import_fused_model(fused, tc_model, cd_model, data)
        assert restored.opportune_load_ratio == pytest.approx(
            model.opportune_load_ratio
        )
        for ratio in (0.3, 1.0, 2.0):
            assert restored.predict_norm(ratio) == pytest.approx(
                model.predict_norm(ratio)
            )

    def test_online_refinement_continues(self, gpu, fused_setup):
        fused, tc_model, cd_model, model = fused_setup
        restored = import_fused_model(
            fused, tc_model, cd_model, export_fused_model(model)
        )
        xtc = tc_model.measure(gpu, fused.tc.ir.default_grid)
        predicted = restored.predict(xtc, xtc)
        error = restored.observe(xtc, xtc, predicted * 1.4)
        assert error > 0.1
        assert restored.update_count == model.update_count + 1

    def test_untrained_export_rejected(self, gpu, fused_setup):
        fused, tc_model, cd_model, _ = fused_setup
        fresh = FusedDurationModel(fused, tc_model, cd_model)
        with pytest.raises(PredictionError):
            export_fused_model(fresh)

    def test_pair_mismatch_rejected(self, gpu, fused_setup):
        fused, tc_model, cd_model, model = fused_setup
        data = export_fused_model(model)
        data["pair"] = ["tgemm_l", "mriq"]
        with pytest.raises(PredictionError):
            import_fused_model(fused, tc_model, cd_model, data)


class TestBundle:
    def test_save_and_load(self, gpu, tmp_path, fused_setup):
        fused, tc_model, cd_model, model = fused_setup
        path = save_bundle(
            str(tmp_path / "models.json"),
            {"tgemm_l": tc_model, "fft": cd_model},
            {("tgemm_l", "fft"): model},
        )
        bundle = load_bundle(path)
        assert bundle["format"] == FORMAT
        assert set(bundle["kernels"]) == {"tgemm_l", "fft"}
        assert len(bundle["fused"]) == 1

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(PredictionError):
            load_bundle(str(path))

    def test_bundle_restores_working_models(self, gpu, tmp_path,
                                            fused_setup):
        fused, tc_model, cd_model, model = fused_setup
        path = save_bundle(
            str(tmp_path / "models.json"),
            {"tgemm_l": tc_model, "fft": cd_model},
            {("tgemm_l", "fft"): model},
        )
        bundle = load_bundle(path)
        restored_tc = import_kernel_model(
            fused.tc.ir, bundle["kernels"]["tgemm_l"]
        )
        restored_cd = import_kernel_model(
            fused.cd.ir, bundle["kernels"]["fft"]
        )
        restored = import_fused_model(
            fused, restored_tc, restored_cd, bundle["fused"][0]
        )
        xtc = restored_tc.predict(fused.tc.ir.default_grid)
        xcd = restored_cd.predict(fused.cd.ir.default_grid)
        assert restored.predict(xtc, xcd) == pytest.approx(
            model.predict(xtc, xcd)
        )
