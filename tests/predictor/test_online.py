"""Tests for the online model manager."""

import pytest

from repro.errors import PredictionError
from repro.fusion.ptb import transform
from repro.fusion.search import FusionSearch
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import fft, mriq
from repro.predictor.online import FUSED_MODEL_TRAIN_MS, OnlineModelManager


@pytest.fixture(scope="module")
def fused_kernel(gpu):
    tc = transform(canonical_gemms()["tgemm_l"], gpu)
    cd = transform(fft(), gpu)
    return FusionSearch(gpu).search(tc, cd).best.fused


class TestKernelModels:
    def test_lazily_trained_and_cached(self, gpu):
        manager = OnlineModelManager(gpu)
        first = manager.kernel_model(mriq())
        second = manager.kernel_model(mriq())
        assert first is second
        assert manager.trained_kernel_models == 1

    def test_predict_kernel(self, gpu):
        manager = OnlineModelManager(gpu)
        cycles = manager.predict_kernel(mriq(), mriq().default_grid)
        assert cycles > 0


class TestFusedModels:
    def test_lazily_trained_with_cost_accounting(self, gpu, fused_kernel):
        manager = OnlineModelManager(gpu)
        model = manager.fused_model(fused_kernel)
        assert model.is_trained
        assert manager.trained_fused_models == 1
        assert manager.total_training_ms == FUSED_MODEL_TRAIN_MS
        # Cached on second request, no extra training cost.
        manager.fused_model(fused_kernel)
        assert manager.total_training_ms == FUSED_MODEL_TRAIN_MS

    def test_predict_and_observe_roundtrip(self, gpu, fused_kernel):
        manager = OnlineModelManager(gpu)
        xtc = manager.predict_kernel(
            fused_kernel.tc.ir, fused_kernel.tc.ir.default_grid
        )
        predicted = manager.predict_fused(fused_kernel, xtc, 0.5 * xtc)
        error = manager.observe_fused(
            fused_kernel, xtc, 0.5 * xtc, predicted
        )
        assert error == pytest.approx(0.0)

    def test_observe_before_predict_raises(self, gpu, fused_kernel):
        manager = OnlineModelManager(gpu)
        with pytest.raises(PredictionError):
            manager.observe_fused(fused_kernel, 1.0, 1.0, 1.0)


class TestModelVersion:
    """The version counter that prediction caches poll for staleness."""

    def test_starts_at_zero(self, gpu):
        assert OnlineModelManager(gpu).version == 0

    def test_accurate_observation_keeps_version(self, gpu, fused_kernel):
        manager = OnlineModelManager(gpu)
        xtc = manager.predict_kernel(
            fused_kernel.tc.ir, fused_kernel.tc.ir.default_grid
        )
        predicted = manager.predict_fused(fused_kernel, xtc, 0.5 * xtc)
        manager.observe_fused(fused_kernel, xtc, 0.5 * xtc, predicted)
        assert manager.version == 0

    def test_online_refit_bumps_version(self, gpu, fused_kernel):
        manager = OnlineModelManager(gpu)
        xtc = manager.predict_kernel(
            fused_kernel.tc.ir, fused_kernel.tc.ir.default_grid
        )
        predicted = manager.predict_fused(fused_kernel, xtc, 0.5 * xtc)
        # A >10% error triggers the Section VI-C refit, after which
        # every cached prediction downstream is stale.
        manager.observe_fused(fused_kernel, xtc, 0.5 * xtc, 2.0 * predicted)
        assert manager.version == 1

    def test_bundle_load_bumps_version(self, gpu, fused_kernel, tmp_path):
        source = OnlineModelManager(gpu)
        source.fused_model(fused_kernel)
        path = source.save(str(tmp_path / "bundle.json"))

        key = (fused_kernel.tc.ir.name, fused_kernel.cd.ir.name)
        fresh = OnlineModelManager(gpu)
        restored = fresh.load(path, {key: fused_kernel})
        assert restored > 0
        assert fresh.version == 1


class TestManagerPersistence:
    def test_save_and_load_roundtrip(self, gpu, fused_kernel, tmp_path):
        manager = OnlineModelManager(gpu)
        manager.fused_model(fused_kernel)  # trains kernel + fused models
        path = manager.save(str(tmp_path / "bundle.json"))

        fresh = OnlineModelManager(gpu)
        artifacts = {
            (fused_kernel.tc.ir.name, fused_kernel.cd.ir.name): fused_kernel
        }
        restored = fresh.load(path, artifacts)
        assert restored == 3  # two kernel models + one fused model
        assert fresh.trained_fused_models == 1
        # Predictions match without any re-profiling.
        xtc = manager.predict_kernel(
            fused_kernel.tc.ir, fused_kernel.tc.ir.default_grid
        )
        assert fresh.predict_fused(fused_kernel, xtc, xtc) == (
            manager.predict_fused(fused_kernel, xtc, xtc)
        )

    def test_load_skips_unknown_pairs(self, gpu, fused_kernel, tmp_path):
        manager = OnlineModelManager(gpu)
        manager.fused_model(fused_kernel)
        path = manager.save(str(tmp_path / "bundle.json"))
        fresh = OnlineModelManager(gpu)
        assert fresh.load(path, {}) == 0
