"""Tests for the OLS linear model."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.predictor.linear import LinearModel


class TestFit:
    def test_exact_line_recovered(self):
        model = LinearModel.fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(1.0)

    def test_least_squares_on_noisy_data(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 50)
        y = 3 * x + 7 + rng.normal(0, 0.1, 50)
        model = LinearModel.fit(x, y)
        assert model.slope == pytest.approx(3.0, abs=0.05)
        assert model.intercept == pytest.approx(7.0, abs=0.2)

    def test_needs_two_points(self):
        with pytest.raises(PredictionError):
            LinearModel.fit([1], [2])

    def test_rejects_constant_x(self):
        with pytest.raises(PredictionError):
            LinearModel.fit([5, 5, 5], [1, 2, 3])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(PredictionError):
            LinearModel.fit([1, 2], [1, 2, 3])


class TestPrediction:
    MODEL = LinearModel(slope=2.0, intercept=1.0)

    def test_predict(self):
        assert self.MODEL.predict(10.0) == 21.0

    def test_predict_many(self):
        out = self.MODEL.predict_many([0.0, 1.0])
        assert list(out) == [1.0, 3.0]

    def test_mean_and_max_error(self):
        x = [1.0, 2.0]
        y = [3.0, 10.0]  # predictions: 3, 5
        assert self.MODEL.mean_abs_pct_error(x, y) == pytest.approx(0.25)
        assert self.MODEL.max_abs_pct_error(x, y) == pytest.approx(0.5)

    def test_error_rejects_zero_actuals(self):
        with pytest.raises(PredictionError):
            self.MODEL.mean_abs_pct_error([1.0], [0.0])


class TestIntersection:
    def test_crossing_point(self):
        a = LinearModel(slope=1.0, intercept=0.0)
        b = LinearModel(slope=2.0, intercept=-3.0)
        assert a.intersection_x(b) == pytest.approx(3.0)

    def test_parallel_lines_raise(self):
        a = LinearModel(slope=1.0, intercept=0.0)
        b = LinearModel(slope=1.0, intercept=5.0)
        with pytest.raises(PredictionError):
            a.intersection_x(b)
