"""Tests for the online SLO monitor: rules, recorder, determinism.

The two contracts everything else leans on:

* observe-only — attaching a monitor never changes what a run does, so
  a monitored run's scheduling outputs are byte-identical to an
  unmonitored one;
* deterministic — the same spec produces the same alert stream (times,
  rule ids, snapshot hashes) serially and under a worker pool.
"""

import dataclasses
import functools
import json

import pytest

from repro.errors import ConfigError
from repro.experiments.common import parallel_map
from repro.runtime.cluster import default_cluster_spec, serve_cluster
from repro.runtime.replay import load_scenario, run_scenario
from repro.runtime.runconfig import RunConfig
from repro.runtime.system import TackerSystem
from repro.telemetry.slo import (
    SLO_RULES_SCHEMA,
    AlertEvent,
    FlightRecorder,
    SLOMonitor,
    SLORule,
    alert_from_dict,
    default_rules,
    load_rules,
    make_monitor,
    merge_alerts,
    resolve_rules,
    rules_to_dict,
    snapshot_hash,
)


class TestRuleValidation:
    def test_defaults_are_valid(self):
        rules = default_rules(50.0)
        assert {r.kind for r in rules} == {
            "burn-rate", "p99-threshold", "guard-escalation",
            "prediction-error",
        }

    @pytest.mark.parametrize("bad", [
        dict(rule_id=""),
        dict(kind="latency"),
        dict(severity="fatal"),
        dict(threshold=0.0),
        dict(short_window_ms=0.0),
        dict(short_window_ms=2000.0, long_window_ms=1000.0),
        dict(slo_budget=0.0),
        dict(slo_budget=1.5),
        dict(ewma_alpha=0.0),
        dict(min_events=0),
        dict(cooldown_ms=-1.0),
    ])
    def test_rejects_bad_fields(self, bad):
        fields = dict(rule_id="r", kind="burn-rate")
        fields.update(bad)
        with pytest.raises(ConfigError):
            SLORule(**fields)


class TestRuleFiles:
    def test_roundtrip(self, tmp_path):
        rules = default_rules(50.0)
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(rules_to_dict(rules)))
        assert load_rules(str(path)) == rules

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"schema": "nope/1", "rules": []}))
        with pytest.raises(ConfigError, match=SLO_RULES_SCHEMA):
            load_rules(str(path))

    def test_rejects_empty_and_unknown_keys(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            {"schema": SLO_RULES_SCHEMA, "rules": []}
        ))
        with pytest.raises(ConfigError, match="non-empty"):
            load_rules(str(path))
        path.write_text(json.dumps({
            "schema": SLO_RULES_SCHEMA,
            "rules": [{"rule_id": "r", "kind": "burn-rate", "burn": 2}],
        }))
        with pytest.raises(ConfigError, match="unknown keys"):
            load_rules(str(path))

    def test_resolve(self, tmp_path):
        assert resolve_rules(None, 50.0) == ()
        assert resolve_rules("default", 50.0) == default_rules(50.0)
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(rules_to_dict(default_rules(9.0))))
        assert resolve_rules(str(path), 50.0) == default_rules(9.0)

    def test_make_monitor_none_for_empty(self):
        assert make_monitor((), 50.0) is None
        assert isinstance(
            make_monitor(default_rules(50.0), 50.0), SLOMonitor
        )


class TestFlightRecorder:
    def test_capacity_bounds_every_channel(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("queries", {"at_ms": float(i)})
        snapshot = recorder.snapshot()
        assert [e["at_ms"] for e in snapshot["queries"]] == [
            6.0, 7.0, 8.0, 9.0,
        ]
        assert set(snapshot) == set(FlightRecorder.CHANNELS)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            FlightRecorder(capacity=0)

    def test_snapshot_hash_is_canonical(self):
        a = snapshot_hash({"b": 1, "a": 2})
        b = snapshot_hash({"a": 2, "b": 1})
        assert a == b and len(a) == 16


def burn_monitor(**overrides):
    fields = dict(
        rule_id="burn", kind="burn-rate", threshold=1.0,
        short_window_ms=1000.0, long_window_ms=5000.0,
        slo_budget=0.1, min_events=5, cooldown_ms=1000.0,
    )
    fields.update(overrides)
    return SLOMonitor((SLORule(**fields),), qos_ms=50.0)


class TestBurnRule:
    def test_fires_when_both_windows_burn(self):
        monitor = burn_monitor()
        for i in range(10):
            monitor.note_query("svc", 0.0, 80.0, 100.0 + 10.0 * i)
        assert monitor.alerts
        alert = monitor.alerts[0]
        assert alert.rule_id == "burn"
        # every query violated: burn = 1.0 / 0.1 budget
        assert alert.context["short_burn"] == pytest.approx(10.0)
        assert alert.value == alert.context["short_burn"]

    def test_min_events_gates_firing(self):
        monitor = burn_monitor()
        for i in range(4):
            monitor.note_query("svc", 0.0, 80.0, 100.0 + 10.0 * i)
        assert monitor.alerts == []

    def test_cooldown_suppresses_refires(self):
        monitor = burn_monitor(cooldown_ms=10_000.0)
        for i in range(50):
            monitor.note_query("svc", 0.0, 80.0, 100.0 + 10.0 * i)
        assert len(monitor.alerts) == 1

    def test_clean_stream_never_fires(self):
        monitor = burn_monitor()
        for i in range(50):
            monitor.note_query("svc", 0.0, 10.0, 100.0 + 10.0 * i)
        assert monitor.alerts == []


class TestP99Rule:
    def p99_monitor(self):
        return SLOMonitor((SLORule(
            rule_id="p99", kind="p99-threshold", threshold=1.0,
            short_window_ms=1000.0, long_window_ms=1000.0,
            min_events=3, cooldown_ms=0.0,
        ),), qos_ms=50.0)

    def test_fires_at_window_close(self):
        monitor = self.p99_monitor()
        for i in range(5):
            monitor.note_query("svc", 0.0, 80.0, 100.0 + 10.0 * i)
        assert monitor.alerts == []  # window still open
        monitor.note_query("svc", 0.0, 10.0, 1500.0)  # closes [0, 1000)
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert.at_ms == 1000.0  # deterministic close time
        assert alert.context["p99_ms"] == pytest.approx(80.0)
        assert alert.context["limit_ms"] == pytest.approx(50.0)

    def test_small_window_never_fires(self):
        monitor = self.p99_monitor()
        monitor.note_query("svc", 0.0, 80.0, 100.0)
        monitor.note_query("svc", 0.0, 80.0, 200.0)
        monitor.note_query("svc", 0.0, 10.0, 1500.0)
        assert monitor.alerts == []  # 2 events < min_events


class TestGuardRule:
    def guard_monitor(self):
        return SLOMonitor((SLORule(
            rule_id="guard", kind="guard-escalation", threshold=1.0,
            min_events=1, cooldown_ms=0.0, severity="warn",
        ),), qos_ms=50.0)

    def test_escalation_fires_and_recovery_does_not(self):
        monitor = self.guard_monitor()
        monitor.note_guard(100.0, "fuse", "reorder", 0.4)
        monitor.note_guard(200.0, "reorder", "fuse", 0.1)
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].severity == "warn"
        assert monitor.alerts[0].context["to_mode"] == "reorder"

    def test_exclusive_pages(self):
        monitor = self.guard_monitor()
        monitor.note_guard(100.0, "reorder", "exclusive", 0.8)
        assert monitor.alerts[0].severity == "page"


class TestEwmaRule:
    def test_persistent_overrun_fires(self):
        monitor = SLOMonitor((SLORule(
            rule_id="ewma", kind="prediction-error", threshold=0.3,
            ewma_alpha=0.2, min_events=5, cooldown_ms=1e9,
        ),), qos_ms=50.0)
        for i in range(10):
            monitor.note_outcome("lc", "k", 1.0, 1.5, 10.0 * i)
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].value == pytest.approx(0.5)

    def test_unpredicted_launches_are_ignored(self):
        monitor = SLOMonitor((SLORule(
            rule_id="ewma", kind="prediction-error", threshold=0.3,
            min_events=1,
        ),), qos_ms=50.0)
        for i in range(10):
            monitor.note_outcome("be", "k", 0.0, 1.5, 10.0 * i)
        assert monitor.alerts == []


class TestAlertPlumbing:
    def test_alert_roundtrips_through_dict(self):
        monitor = burn_monitor()
        for i in range(10):
            monitor.note_query("svc", 0.0, 80.0, 100.0 + 10.0 * i)
        [alert] = monitor.alerts
        clone = alert_from_dict(alert.to_dict())
        assert isinstance(clone, AlertEvent)
        assert clone == alert
        assert clone.snapshot_hash == snapshot_hash(clone.snapshot)

    def test_source_is_stamped_into_context(self):
        monitor = SLOMonitor(
            default_rules(50.0), 50.0, source="node7",
        )
        for i in range(30):
            monitor.note_query("svc", 0.0, 80.0, 100.0 + 10.0 * i)
        assert monitor.alerts
        assert all(
            a.context["source"] == "node7" for a in monitor.alerts
        )

    def test_merge_orders_by_time_source_rule(self):
        def alert(at_ms, source, rule_id):
            return {
                "at_ms": at_ms, "rule_id": rule_id,
                "context": {"source": source},
            }

        merged = merge_alerts([
            [alert(5.0, "node1", "b"), alert(5.0, "node1", "a")],
            [alert(1.0, "node0", "z")],
            [alert(5.0, "node0", "z")],
        ])
        assert [
            (a["at_ms"], a["context"]["source"], a["rule_id"])
            for a in merged
        ] == [
            (1.0, "node0", "z"), (5.0, "node0", "z"),
            (5.0, "node1", "a"), (5.0, "node1", "b"),
        ]


def monitored_spec(slo_rules):
    spec = default_cluster_spec(
        2, lc_names=("resnet50",), be_names=("fft",),
        run=RunConfig(queries=60, load=0.95),
    )
    return dataclasses.replace(spec, slo_rules=tuple(slo_rules))


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def monitored(self):
        spec = monitored_spec(())
        rules = default_rules(spec.run.qos_ms)
        return serve_cluster(monitored_spec(rules))

    def test_cluster_run_fires_alerts(self, monitored):
        assert monitored.alerts
        sources = {a["context"]["source"] for a in monitored.alerts}
        assert sources <= {"node0", "node1"}

    def test_alert_stream_serial_equals_workers(self, monitored):
        rules = default_rules(monitored_spec(()).run.qos_ms)
        parallel = serve_cluster(
            monitored_spec(rules),
            map_fn=functools.partial(parallel_map, workers=2),
        )
        assert json.dumps(parallel.alerts, sort_keys=True) == \
            json.dumps(monitored.alerts, sort_keys=True)

    def test_monitor_is_observe_only(self, monitored):
        bare = serve_cluster(monitored_spec(()))
        assert bare.alerts == []
        assert [n.tacker.latencies_ms for n in bare.nodes] == \
            [n.tacker.latencies_ms for n in monitored.nodes]
        assert [n.tacker.n_fused_kernels for n in bare.nodes] == \
            [n.tacker.n_fused_kernels for n in monitored.nodes]

    @pytest.mark.parametrize("scenario_name", ["diurnal", "flash-crowd"])
    def test_autoscale_alerts_serial_equal_workers(self, scenario_name):
        from repro.runtime.autoscale import AutoscaleSpec, run_autoscale

        def alerts(map_fn):
            scenario = load_scenario(scenario_name)
            spec = AutoscaleSpec(
                scenario=scenario_name, rate_nodes=2, span_ms=4000.0,
                slo_rules=default_rules(scenario.qos_ms),
            )
            return run_autoscale(spec, map_fn=map_fn).alerts

        serial = alerts(None)
        parallel = alerts(functools.partial(parallel_map, workers=4))
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)
        for alert in serial:
            assert {"rule_id", "at_ms", "snapshot_hash"} <= set(alert)

    def test_scenario_replay_observe_only(self, gpu):
        scenario = load_scenario("flash-crowd")
        summaries = []
        for rules in ((), default_rules(scenario.qos_ms)):
            system = TackerSystem(gpu=gpu, config=scenario.run_config())
            monitor = make_monitor(
                rules, scenario.qos_ms, source=scenario.name
            )
            result = run_scenario(
                system, scenario, n_queries=120, monitor=monitor
            )
            summaries.append(result.summary_dict())
            if rules:
                assert result.alerts
        assert json.dumps(summaries[0], sort_keys=True) == \
            json.dumps(summaries[1], sort_keys=True)
