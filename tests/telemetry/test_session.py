"""Tests for the per-run telemetry session and the process switch."""

import os
from types import SimpleNamespace

import pytest

from repro.telemetry import (
    RunTelemetry,
    MetricsRegistry,
    SIM_SPAN_CAP,
    TELEMETRY_ENVS,
    merge_session,
)
from repro.telemetry import core


@pytest.fixture(autouse=True)
def clean_telemetry():
    """The switch and registry are process-global; isolate tests."""
    core.reset()
    yield
    core.reset()


def query(service="Resnet50", arrival=0.0, qid=7):
    return SimpleNamespace(
        model=SimpleNamespace(name=service), arrival_ms=arrival, qid=qid,
    )


def run_result(**overrides):
    fields = dict(
        n_lc_kernels=10, n_be_kernels=3, n_fused_kernels=2,
        n_shed_be=0, n_deferred_be=0, n_dropped_be=0, n_delayed_be=0,
        guard_mode_decisions={}, latencies_by_model={"Resnet50": [12.0]},
    )
    fields.update(overrides)
    return SimpleNamespace(**fields)


class TestSwitch:
    def test_off_by_default(self):
        for env in TELEMETRY_ENVS:
            assert not os.environ.get(env), (
                f"{env} set in the test environment; telemetry tests "
                "assume environment-driven activation is off"
            )
        assert not core.active()

    def test_enable_disable_reset(self):
        core.enable()
        assert core.active()
        core.disable()
        assert not core.active()
        core.reset()
        assert not core.active()

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert core.active()
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert not core.active()
        # A programmatic disable overrides the environment.
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        core.disable()
        assert not core.active()

    def test_sim_span_cap(self):
        for i in range(SIM_SPAN_CAP + 5):
            core.sim_span("engine.run", 0.0, 1.0, events=i)
        assert len(core.sim_spans()) == SIM_SPAN_CAP
        assert core.sim_spans_dropped() == 5


class TestRunTelemetry:
    def test_query_spans_split_queue_and_service(self):
        session = RunTelemetry(policy="tacker")
        session.note_first_launch(7, 2.0)
        session.note_first_launch(7, 3.0)  # later launches don't move it
        session.note_query_complete(query(arrival=1.0), 6.0)
        queue, service = session.query_spans()
        assert (queue.name, queue.start, queue.end) == ("queue", 1.0, 2.0)
        assert (service.start, service.end) == (2.0, 6.0)
        assert service.attrs["latency_ms"] == pytest.approx(5.0)
        assert service.duration == pytest.approx(4.0)

    def test_first_launch_is_transient(self):
        """Sessions compare equal across processes despite qid drift."""
        a = RunTelemetry(policy="tacker")
        b = RunTelemetry(policy="tacker")
        a.note_first_launch(7, 2.0)
        b.note_first_launch(9001, 2.0)
        a.note_query_complete(query(qid=7), 6.0)
        b.note_query_complete(query(qid=9001), 6.0)
        assert a == b
        assert not a._first_launch and not b._first_launch

    def test_publish_result_metrics(self):
        session = RunTelemetry(policy="tacker")
        session.publish_result(run_result())
        reg = session.registry
        assert reg.value("repro_runs_total", policy="tacker") == 1
        assert reg.value(
            "repro_kernels_total", kind="fused", policy="tacker"
        ) == 2
        assert reg.value("repro_queries_total", service="Resnet50") == 1

    def test_admission_override_rewrites_last_decision(self):
        from repro.telemetry import DecisionRecord

        session = RunTelemetry(policy="tacker")
        session.record_decision(DecisionRecord(
            index=0, now_ms=0.0, policy="tacker", kind="be", be_app="fft",
        ))
        session.note_admission_override("shed")
        last = session.decisions[-1]
        assert (last.admission, last.final_kind) == ("shed", "lc")

    def test_summary_counts(self):
        from repro.telemetry import DecisionRecord

        session = RunTelemetry(policy="tacker")
        for index, kind in enumerate(("lc", "fused", "lc")):
            session.record_decision(DecisionRecord(
                index=index, now_ms=0.0, policy="tacker", kind=kind,
            ))
        summary = session.summary()
        assert summary["decisions"] == 3
        assert summary["by_kind"] == {"fused": 1, "lc": 2}
        assert summary["fused"] == 1

    def test_merge_session_into_process_registry(self):
        session = RunTelemetry(policy="tacker")
        session.publish_result(run_result())
        target = MetricsRegistry()
        merge_session(session, target)
        assert target.value("repro_runs_total", policy="tacker") == 1
        merge_session(None, target)  # no-op
        assert target.value("repro_runs_total", policy="tacker") == 1
