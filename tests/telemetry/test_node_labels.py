"""Per-node metric labels: fleet runs keep replica identity.

Before the labels existed, merging three replicas' registries folded
every ``repro_query_latency_ms`` series into one unlabeled sample and
the per-node latency distribution was unrecoverable.  These tests pin
the fix: cluster runs label each node's session with ``node``,
autoscale epochs additionally stamp ``epoch``, and a 3-node fleet's
per-node count/sum survive a snapshot → merge round-trip bit-exactly —
serial and under a worker pool.
"""

import functools

import pytest

from repro.experiments.common import parallel_map
from repro.runtime.autoscale import AutoscaleSpec, run_autoscale
from repro.runtime.cluster import default_cluster_spec, serve_cluster
from repro.runtime.runconfig import RunConfig
from repro.telemetry import core
from repro.telemetry.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_telemetry():
    core.reset()
    yield
    core.reset()


def fleet_spec():
    return default_cluster_spec(
        3, lc_names=("resnet50",), be_names=("fft",),
        run=RunConfig(queries=8, telemetry=True),
    )


def merged_registry(result) -> MetricsRegistry:
    registry = MetricsRegistry()
    for node in result.nodes:
        registry.merge_snapshot(node.tacker.telemetry.registry.snapshot())
    return registry


def latency_samples(registry: MetricsRegistry) -> dict:
    """{label-key: histogram state} of the latency family."""
    return registry.snapshot()["repro_query_latency_ms"]["samples"]


@pytest.fixture(scope="module")
def fleet():
    return serve_cluster(fleet_spec())


class TestClusterNodeLabels:
    def test_each_session_is_stamped_with_its_node(self, fleet):
        assert len(fleet.nodes) == 3
        for node in fleet.nodes:
            session = node.tacker.telemetry
            service = next(iter(node.tacker.latencies_by_model))
            assert session.extra_labels == {"node": node.name}
            assert session.registry.value(
                "repro_queries_total",
                service=service, node=node.name,
            ) == len(node.tacker.latencies_ms) > 0

    def test_merge_keeps_three_distinct_series(self, fleet):
        merged = merged_registry(fleet)
        assert len(latency_samples(merged)) == 3
        for node in fleet.nodes:
            latencies = node.tacker.latencies_ms
            service = next(iter(node.tacker.latencies_by_model))
            histogram = merged.histogram(
                "repro_query_latency_ms",
                service=service, node=node.name,
            )
            assert histogram.count == len(latencies)
        text = merged.prometheus_text()
        for node in fleet.nodes:
            assert f'node="{node.name}"' in text

    def test_per_node_sum_survives_roundtrip(self, fleet):
        merged = merged_registry(fleet)
        rehydrated = MetricsRegistry()
        rehydrated.merge_snapshot(merged.snapshot())
        assert rehydrated.snapshot() == merged.snapshot()
        assert rehydrated.prometheus_text() == merged.prometheus_text()
        by_key = latency_samples(rehydrated)
        for node in fleet.nodes:
            latencies = node.tacker.latencies_ms
            state = next(
                s for key, s in by_key.items()
                if ("node", node.name) in key
            )
            assert state["count"] == len(latencies)
            assert state["sum"] == pytest.approx(sum(latencies))

    def test_worker_pool_merge_matches_serial(self, fleet):
        parallel = serve_cluster(
            fleet_spec(),
            map_fn=functools.partial(parallel_map, workers=3),
        )
        assert merged_registry(parallel).snapshot() == \
            merged_registry(fleet).snapshot()
        assert merged_registry(parallel).prometheus_text() == \
            merged_registry(fleet).prometheus_text()


class TestAutoscaleEpochLabels:
    def test_epoch_sessions_carry_node_and_epoch(self):
        core.enable()
        run_autoscale(AutoscaleSpec(
            scenario="flash-crowd", rate_nodes=2, span_ms=4000.0,
        ))
        snapshot = core.registry().snapshot()
        samples = snapshot["repro_runs_total"]["samples"]
        labels = [dict(key) for key in samples]
        assert labels and all(
            "node" in entry and "epoch" in entry for entry in labels
        )
        # distinct replicas and distinct control epochs both survive
        assert len({entry["node"] for entry in labels}) >= 2
        assert len({entry["epoch"] for entry in labels}) >= 2
