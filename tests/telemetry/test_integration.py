"""End-to-end telemetry tests: runs, determinism, traces, no-op path.

These are the acceptance gates of the observability layer:

* every fused launch has a decision-log entry whose ``Tgain`` equals
  ``Tcd - (Tk_fuse - Ttc)`` recomputed from that entry's own inputs;
* the decision log is byte-identical between serial and worker-pool
  runs of the same cluster spec;
* a cluster run round-trips through the Chrome trace exporter with one
  pid per node;
* with telemetry disabled nothing is recorded anywhere.
"""

import functools
import json

import pytest

from repro.experiments.common import parallel_map
from repro.runtime.cluster import default_cluster_spec, serve_cluster
from repro.runtime.runconfig import RunConfig
from repro.runtime.system import TackerSystem
from repro.runtime.trace_export import (
    cluster_to_chrome_trace,
    to_chrome_trace,
    write_cluster_trace,
)
from repro.telemetry import core, validate_decision_jsonl


@pytest.fixture(autouse=True)
def clean_telemetry():
    core.reset()
    yield
    core.reset()


@pytest.fixture(scope="module")
def traced_outcome(gpu):
    system = TackerSystem(gpu=gpu, config=RunConfig(telemetry=True))
    return system.run_pair("resnet50", "fft", n_queries=12)


class TestDecisionLog:
    def test_session_rides_on_the_result(self, traced_outcome):
        session = traced_outcome.tacker.telemetry
        assert session is not None and session.policy == "tacker"
        assert traced_outcome.baymax.telemetry.policy == "baymax"

    def test_every_fused_kernel_has_a_decision(self, traced_outcome):
        session = traced_outcome.tacker.telemetry
        fused = session.fused_decisions()
        assert len(fused) == traced_outcome.tacker.n_fused_kernels > 0

    def test_tgain_recomputes_from_recorded_inputs(self, traced_outcome):
        session = traced_outcome.tacker.telemetry
        for record in session.fused_decisions():
            chosen = record.chosen_candidate()
            assert chosen is not None
            assert chosen.lc_is_tc  # resnet50 LC kernels are the TC half
            assert record.gain_ms == pytest.approx(
                chosen.tcd_ms - (chosen.tk_fuse_ms - chosen.ttc_ms)
            )
            assert record.gain_ms == pytest.approx(chosen.gain_ms)

    def test_reservation_math_is_recorded(self, traced_outcome):
        session = traced_outcome.tacker.telemetry
        reserved = [
            d for d in session.decisions if d.reservation is not None
        ]
        assert reserved
        for record in reserved:
            reservation = record.reservation
            assert reservation.thr_ms == pytest.approx(
                reservation.headroom_ms - reservation.guard_margin_ms
            )
            for entry in reservation.entries:
                assert entry.slack_ms == pytest.approx(
                    reservation.qos_ms - entry.elapsed_ms
                    - entry.reserved_ahead_ms - entry.remaining_ms
                )

    def test_exported_jsonl_validates(self, traced_outcome, tmp_path):
        session = traced_outcome.tacker.telemetry
        path = tmp_path / "decisions.jsonl"
        path.write_text(session.decision_jsonl())
        assert validate_decision_jsonl(str(path)) == len(session.decisions)

    def test_query_spans_cover_all_queries(self, traced_outcome):
        session = traced_outcome.tacker.telemetry
        services = [
            s for s in session.query_spans() if s.name == "service"
        ]
        assert len(services) == len(traced_outcome.tacker.latencies_ms)


def cluster_spec():
    return default_cluster_spec(
        2, lc_names=("resnet50",), be_names=("fft",),
        run=RunConfig(queries=8, telemetry=True),
        record_kernels=True,
    )


def decision_jsonl(result) -> str:
    return "".join(
        node.tacker.telemetry.decision_jsonl() for node in result.nodes
    )


@pytest.fixture(scope="module")
def cluster():
    """One serially-served fleet, shared by the trace and determinism
    tests (the determinism test re-serves the same spec in workers)."""
    return serve_cluster(cluster_spec())


class TestParallelDeterminism:
    def test_decision_log_serial_equals_workers(self, cluster):
        parallel = serve_cluster(
            cluster_spec(),
            map_fn=functools.partial(parallel_map, workers=2),
        )
        assert decision_jsonl(cluster) == decision_jsonl(parallel)


class TestClusterTrace:
    def test_one_pid_per_node(self, cluster):
        trace = cluster_to_chrome_trace(cluster)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {1, 2}
        names = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e["name"] == "process_name"
        }
        assert names == {node.name for node in cluster.nodes}

    def test_decision_instants_present(self, cluster):
        trace = cluster_to_chrome_trace(cluster)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        decisions = sum(
            len(node.tacker.telemetry.decisions) for node in cluster.nodes
        )
        assert len(instants) == decisions > 0

    def test_write_roundtrip(self, cluster, tmp_path):
        path = write_cluster_trace(cluster, str(tmp_path / "fleet.json"))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["otherData"]["n_nodes"] == 2
        assert loaded["otherData"]["n_fused"] == sum(
            node.tacker.n_fused_kernels for node in cluster.nodes
        )

    def test_single_result_trace_has_scheduler_row(self, cluster):
        trace = to_chrome_trace(cluster.nodes[0].tacker)
        meta = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert "Scheduler" in meta


class TestDisabledNoOp:
    def test_nothing_recorded_without_the_switch(self, gpu):
        baseline = len(core.registry())
        system = TackerSystem(gpu=gpu)
        outcome = system.run_pair("resnet50", "fft", n_queries=8)
        assert outcome.tacker.telemetry is None
        assert outcome.baymax.telemetry is None
        assert len(core.registry()) == baseline == 0
        assert core.sim_spans() == []

    def test_process_switch_traces_without_runconfig(self, gpu):
        core.enable()
        system = TackerSystem(gpu=gpu)
        outcome = system.run_pair("resnet50", "fft", n_queries=8)
        assert outcome.tacker.telemetry is not None
        assert core.registry().value(
            "repro_runs_total", policy="tacker"
        ) == 1
