"""Tests for the metrics registry (repro.telemetry.registry)."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry


class TestHandles:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        counter = reg.counter("requests_total", "Requests.", kind="lc")
        counter.inc()
        counter.inc(4)
        assert reg.value("requests_total", kind="lc") == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError, match="only go up"):
            reg.counter("requests_total").inc(-1)

    def test_counter_set_total_replaces(self):
        reg = MetricsRegistry()
        counter = reg.counter("oracle_total", outcome="hit")
        counter.set_total(10)
        counter.set_total(25)
        assert reg.value("oracle_total", outcome="hit") == 25

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("wall_seconds", phase="fig10")
        gauge.set(1.5)
        gauge.set(0.5)
        assert reg.value("wall_seconds", phase="fig10") == 0.5

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency_ms", buckets=(10.0, 20.0))
        for value in (5.0, 15.0, 99.0):
            hist.observe(value)
        assert hist.count == 3
        state = reg.snapshot()["latency_ms"]["samples"][()]
        assert state["counts"] == [1, 1, 1]  # <=10, <=20, +Inf
        assert state["sum"] == pytest.approx(119.0)

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("c", a="1", b="2").inc()
        reg.counter("c", b="2", a="1").inc()
        assert reg.value("c", a="1", b="2") == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("dual")
        with pytest.raises(ConfigError, match="already registered"):
            reg.gauge("dual")

    def test_histogram_value_read_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        with pytest.raises(ConfigError, match="histogram"):
            reg.value("h")


def populated() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("runs_total", "Runs.", policy="tacker").inc(2)
    reg.gauge("wall_seconds", "Wall clock.").set(1.25)
    hist = reg.histogram(
        "latency_ms", "Latency.", buckets=(10.0, 50.0), service="Resnet50"
    )
    hist.observe(7.0)
    hist.observe(42.0)
    return reg


class TestSnapshots:
    def test_equality_via_snapshot(self):
        assert populated() == populated()
        other = populated()
        other.counter("runs_total", policy="tacker").inc()
        assert populated() != other

    def test_diff_of_idle_worker_is_empty(self):
        reg = populated()
        assert reg.diff(reg.snapshot()) == {}

    def test_diff_then_merge_reconstructs(self):
        reg = populated()
        before = reg.snapshot()
        reg.counter("runs_total", policy="tacker").inc(3)
        reg.gauge("wall_seconds").set(9.0)
        reg.histogram(
            "latency_ms", buckets=(10.0, 50.0), service="Resnet50"
        ).observe(100.0)
        delta = reg.diff(before)
        # Replaying the delta onto the old state matches the new state.
        replay = populated()
        replay.merge_snapshot(delta)
        assert replay == reg

    def test_counter_merge_is_commutative(self):
        a = MetricsRegistry()
        a.counter("c", k="x").inc(2)
        b = MetricsRegistry()
        b.counter("c", k="x").inc(5)
        ab = MetricsRegistry()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba = MetricsRegistry()
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert ab == ba
        assert ab.value("c", k="x") == 7

    def test_registry_pickles(self):
        import pickle

        reg = populated()
        assert pickle.loads(pickle.dumps(reg)) == reg

    def test_clear_and_len(self):
        reg = populated()
        assert len(reg) == 3
        reg.clear()
        assert len(reg) == 0
        assert reg.prometheus_text() == ""


class TestExposition:
    def test_prometheus_golden(self):
        assert populated().prometheus_text() == (
            "# HELP latency_ms Latency.\n"
            "# TYPE latency_ms histogram\n"
            'latency_ms_bucket{service="Resnet50",le="10"} 1\n'
            'latency_ms_bucket{service="Resnet50",le="50"} 2\n'
            'latency_ms_bucket{service="Resnet50",le="+Inf"} 2\n'
            'latency_ms_sum{service="Resnet50"} 49\n'
            'latency_ms_count{service="Resnet50"} 2\n'
            "# HELP runs_total Runs.\n"
            "# TYPE runs_total counter\n"
            'runs_total{policy="tacker"} 2\n'
            "# HELP wall_seconds Wall clock.\n"
            "# TYPE wall_seconds gauge\n"
            "wall_seconds 1.25\n"
        )

    def test_exposition_is_deterministic(self):
        # Insertion order differs; the exposition must not.
        reg = MetricsRegistry()
        reg.counter("z_total", kind="b").inc()
        reg.counter("a_total").inc()
        reg.counter("z_total", kind="a").inc()
        other = MetricsRegistry()
        other.counter("a_total").inc()
        other.counter("z_total", kind="a").inc()
        other.counter("z_total", kind="b").inc()
        assert reg.prometheus_text() == other.prometheus_text()

    def test_json_snapshot_serializes(self):
        snap = populated().json_snapshot()
        text = json.dumps(snap, sort_keys=True)
        loaded = json.loads(text)
        assert loaded["runs_total"]["samples"][0] == {
            "labels": {"policy": "tacker"}, "value": 2,
        }
        assert loaded["latency_ms"]["samples"][0]["counts"] == [1, 1, 0]
