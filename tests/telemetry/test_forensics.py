"""Tests for incident forensics: cause scoring, JSONL, rendering.

Each cause in the taxonomy gets a synthetic flight-recorder snapshot
bearing exactly its signature, and ``score_causes`` must rank it first
— the unit-level twin of the incident study's end-to-end accuracy bar.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry.forensics import (
    CAUSES,
    INCIDENT_SCHEMA,
    attribute_run,
    diagnose_alert,
    diagnose_alerts,
    incidents_jsonl,
    read_incidents,
    render_incident_html,
    render_incident_text,
    score_causes,
    validate_incident_jsonl,
    write_incidents,
)
from repro.telemetry.slo import SLOMonitor, SLORule


def outcome(kind, ratio, at_ms=0.0):
    return {
        "at_ms": at_ms, "kind": kind, "name": "k",
        "predicted_ms": 1.0, "actual_ms": ratio,
    }


def query(violated, penalty_ms=0.0, at_ms=0.0):
    return {
        "at_ms": at_ms, "service": "svc", "arrival_ms": 0.0,
        "latency_ms": 80.0 if violated else 10.0, "violated": violated,
        "penalty_ms": penalty_ms,
    }


def top_cause(snapshot):
    causes = score_causes(snapshot)
    assert causes, "no cause scored above zero"
    return causes[0]["cause"]


class TestScoreCauses:
    def test_predictor_bias(self):
        snapshot = {
            "outcomes": [outcome("lc", 1.6) for _ in range(20)],
            "queries": [query(True) for _ in range(10)],
        }
        assert top_cause(snapshot) == "predictor-bias"

    def test_eq8_overrun(self):
        snapshot = {
            "outcomes": (
                [outcome("lc", 1.0) for _ in range(20)]
                + [outcome("fused", 1.7) for _ in range(20)]
            ),
            "queries": [query(True) for _ in range(10)],
        }
        assert top_cause(snapshot) == "eq8-overrun"

    def test_hfused_counts_as_a_co_run(self):
        snapshot = {
            "outcomes": (
                [outcome("lc", 1.0) for _ in range(20)]
                + [outcome("hfused", 1.7) for _ in range(20)]
            ),
        }
        assert top_cause(snapshot) == "eq8-overrun"

    def test_slow_node(self):
        snapshot = {
            "epochs": [{
                "end_ms": 1000.0, "violations": 3,
                "node_overrun": {
                    "node000": 2.1, "node001": 1.0, "node002": 1.02,
                },
            }],
        }
        assert top_cause(snapshot) == "slow-node"

    def test_stale_refit_wins_when_worst_node_is_refitting(self):
        snapshot = {
            "epochs": [{
                "end_ms": 1000.0, "violations": 3,
                "node_overrun": {
                    "node000": 2.1, "node001": 1.0, "node002": 1.02,
                },
                "refit_nodes": ["node000"],
            }],
        }
        assert top_cause(snapshot) == "stale-refit"

    def test_crash_reroute_from_penalties(self):
        snapshot = {
            "queries": [query(True, penalty_ms=30.0) for _ in range(5)]
            + [query(False) for _ in range(5)],
        }
        assert top_cause(snapshot) == "crash-reroute"

    def test_crash_reroute_from_epochs(self):
        snapshot = {
            "epochs": [
                {"end_ms": 1000.0, "violations": 4,
                 "crashed": ["node001"], "n_rerouted": 7},
            ],
        }
        assert top_cause(snapshot) == "crash-reroute"

    def test_scaler_lag(self):
        snapshot = {
            "epochs": [
                {"end_ms": 1000.0, "violations": 5, "served": 50,
                 "nodes": 2, "desired": 4, "n_rerouted": 0},
            ],
            "queries": [query(True) for _ in range(5)],
        }
        assert top_cause(snapshot) == "scaler-lag"

    def test_overload_is_the_residual(self):
        snapshot = {"queries": [query(True) for _ in range(10)]}
        assert top_cause(snapshot) == "overload"
        assert top_cause({}) == "overload"

    def test_ranking_is_sorted_and_closed(self):
        snapshot = {
            "outcomes": [outcome("lc", 1.6) for _ in range(20)],
            "queries": [query(True, penalty_ms=5.0) for _ in range(10)],
        }
        causes = score_causes(snapshot)
        scores = [c["score"] for c in causes]
        assert scores == sorted(scores, reverse=True)
        assert all(c["cause"] in CAUSES for c in causes)


def fired_alert():
    """A real alert from a monitor fed a biased stream."""
    monitor = SLOMonitor((SLORule(
        rule_id="burn", kind="burn-rate", threshold=1.0,
        slo_budget=0.1, min_events=5, cooldown_ms=0.0,
    ),), qos_ms=50.0, source="node3")
    for i in range(10):
        monitor.note_outcome("lc", "k", 1.0, 1.6, 100.0 + 10.0 * i)
        monitor.note_query("svc", 0.0, 80.0, 100.0 + 10.0 * i)
    assert monitor.alerts
    return monitor.alerts[0]


class TestDiagnosis:
    def test_diagnose_accepts_event_and_dict(self):
        alert = fired_alert()
        from_event = diagnose_alert(alert, index=2)
        from_dict = diagnose_alert(alert.to_dict(), index=2)
        assert from_event == from_dict
        assert from_event.index == 2
        assert from_event.source == "node3"
        assert from_event.top_cause == "predictor-bias"
        assert from_event.snapshot_hash == alert.snapshot_hash
        assert from_event.window["violated_queries"] > 0
        assert len(from_event.window["last_breaches"]) <= 5

    def test_diagnose_alerts_preserves_order(self):
        alert = fired_alert()
        incidents = diagnose_alerts([alert, alert.to_dict()])
        assert [i.index for i in incidents] == [0, 1]

    def test_attribute_run(self):
        top, totals = attribute_run([fired_alert()])
        assert top == "predictor-bias"
        assert totals["predictor-bias"] > 0
        assert attribute_run([]) == (None, {})


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        incidents = diagnose_alerts([fired_alert()])
        path = str(tmp_path / "incidents.jsonl")
        assert write_incidents(path, incidents) == 1
        assert validate_incident_jsonl(path) == 1
        [record] = read_incidents(path)
        assert record == incidents[0].to_dict()
        assert record["schema"] == INCIDENT_SCHEMA

    def test_jsonl_is_byte_stable(self):
        incidents = diagnose_alerts([fired_alert()])
        text = incidents_jsonl(incidents)
        assert text == incidents_jsonl(diagnose_alerts([fired_alert()]))
        line = text.strip()
        assert list(json.loads(line)) == sorted(json.loads(line))
        assert ": " not in line.split('"last_breaches"')[0]
        assert incidents_jsonl([]) == ""

    def good_record(self):
        return diagnose_alert(fired_alert()).to_dict()

    def write_bad(self, tmp_path, **overrides):
        record = self.good_record()
        record.update(overrides)
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        return str(path)

    def test_validator_rejects_bad_schema(self, tmp_path):
        path = self.write_bad(tmp_path, schema="repro-incident/9")
        with pytest.raises(ConfigError, match="schema"):
            validate_incident_jsonl(path)

    def test_validator_rejects_missing_key(self, tmp_path):
        record = self.good_record()
        del record["top_cause"]
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ConfigError, match="missing key"):
            validate_incident_jsonl(str(path))

    def test_validator_rejects_unknown_cause(self, tmp_path):
        path = self.write_bad(tmp_path, top_cause="gremlins")
        with pytest.raises(ConfigError, match="unknown cause"):
            validate_incident_jsonl(path)

    def test_validator_rejects_unsorted_causes(self, tmp_path):
        record = self.good_record()
        record["causes"] = list(reversed(record["causes"]))
        record["top_cause"] = record["causes"][0]["cause"]
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ConfigError, match="descending"):
            validate_incident_jsonl(str(path))

    def test_validator_rejects_top_cause_mismatch(self, tmp_path):
        record = self.good_record()
        assert record["causes"][0]["cause"] != "overload" \
            or len(record["causes"]) > 1
        other = next(
            c["cause"] for c in record["causes"]
            if c["cause"] != record["top_cause"]
        )
        path = self.write_bad(tmp_path, top_cause=other)
        with pytest.raises(ConfigError, match="disagrees"):
            validate_incident_jsonl(path)

    def test_validator_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope\n")
        with pytest.raises(ConfigError, match="not valid JSON"):
            validate_incident_jsonl(str(path))


class TestRendering:
    def test_text_timeline(self):
        incidents = diagnose_alerts([fired_alert()])
        text = render_incident_text(incidents)
        assert "1 incident(s)" in text
        assert "predictor-bias" in text
        assert "burn" in text
        assert "[node3]" in text
        # dict records render identically to Incident objects
        assert render_incident_text(
            [i.to_dict() for i in incidents]
        ) == text

    def test_text_empty(self):
        assert render_incident_text([]) == "no incidents\n"

    def test_html_escapes_and_lists_causes(self):
        incident = diagnose_alert(fired_alert())
        incident.rule_id = "<burn>"
        html = render_incident_html([incident])
        assert "&lt;burn&gt;" in html
        assert "<burn>" not in html
        assert "predictor-bias" in html
        assert html.startswith("<!DOCTYPE html>")

    def test_html_empty(self):
        assert "no incidents" in render_incident_html([])
