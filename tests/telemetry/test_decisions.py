"""Tests for the decision log records and JSONL round-trip."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    DecisionRecord,
    FusionCandidate,
    ReservationEntry,
    ReservationRecord,
    decision_log_jsonl,
    validate_decision_jsonl,
    write_decision_log,
)


def fused_record(index=0) -> DecisionRecord:
    candidate = FusionCandidate(
        be_app="fft", tc="tgemm_l", cd="fft", ttc_ms=2.0, tcd_ms=3.0,
        tk_fuse_ms=4.0, lc_is_tc=True, extra_lc_ms=2.0, gain_ms=1.0,
        admissible=True,
    )
    reservation = ReservationRecord(
        qos_ms=50.0,
        entries=(ReservationEntry(
            service="Resnet50", arrival_ms=0.0, elapsed_ms=1.0,
            remaining_ms=10.0, reserved_ahead_ms=0.0, slack_ms=39.0,
        ),),
        headroom_ms=39.0, guard_margin_ms=0.0, thr_ms=39.0,
    )
    return DecisionRecord(
        index=index, now_ms=1.0, policy="tacker", kind="fused",
        lc_service="Resnet50", lc_kernel="tgemm_l", be_app="fft",
        fused_kernel="fused_tgemm_l_fft", thr_ms=39.0, gain_ms=1.0,
        candidates=(candidate,), reservation=reservation,
    )


class TestRecords:
    def test_chosen_candidate(self):
        record = fused_record()
        chosen = record.chosen_candidate()
        assert chosen is not None and chosen.be_app == "fft"

    def test_chosen_candidate_none_for_lc(self):
        record = DecisionRecord(
            index=0, now_ms=0.0, policy="tacker", kind="lc",
        )
        assert record.chosen_candidate() is None

    def test_gain_identity_of_the_example(self):
        # Tgain = Tcd - (Tk_fuse - Ttc) per Eq. 8.
        chosen = fused_record().chosen_candidate()
        assert chosen.gain_ms == pytest.approx(
            chosen.tcd_ms - (chosen.tk_fuse_ms - chosen.ttc_ms)
        )


class TestJsonl:
    def test_jsonl_lines_parse_and_sort_keys(self):
        text = decision_log_jsonl([fused_record(0), fused_record(1)])
        lines = text.strip().split("\n")
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert list(record) == sorted(record)
        assert record["final_kind"] == "fused"

    def test_empty_log_is_empty_string(self):
        assert decision_log_jsonl([]) == ""

    def test_write_and_validate_roundtrip(self, tmp_path):
        path = str(tmp_path / "decisions.jsonl")
        write_decision_log([fused_record(0), fused_record(1)], path)
        assert validate_decision_jsonl(path) == 2

    def test_validator_rejects_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"index": 0}\n')
        with pytest.raises(ConfigError, match="missing field"):
            validate_decision_jsonl(str(path))

    def test_validator_rejects_unknown_kind(self, tmp_path):
        record = json.loads(decision_log_jsonl([fused_record()]).strip())
        record["kind"] = record["final_kind"] = "warp"
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ConfigError, match="unknown kind"):
            validate_decision_jsonl(str(path))

    def test_validator_rejects_fused_without_candidate(self, tmp_path):
        record = json.loads(decision_log_jsonl([fused_record()]).strip())
        record["candidates"] = []
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ConfigError, match="admitted candidate"):
            validate_decision_jsonl(str(path))


class TestZooKinds:
    """The scheduler-zoo decision kinds: hfused, spatial, chain."""

    def record_dict(self, **overrides):
        record = json.loads(decision_log_jsonl([fused_record()]).strip())
        record.update(overrides)
        return record

    def write(self, tmp_path, record):
        path = tmp_path / "decisions.jsonl"
        path.write_text(json.dumps(record) + "\n")
        return str(path)

    def test_hfused_with_second_be_validates(self, tmp_path):
        record = self.record_dict(
            kind="hfused", final_kind="hfused", be_app2="mriq",
        )
        assert validate_decision_jsonl(self.write(tmp_path, record)) == 1

    def test_hfused_without_be_app2_rejected(self, tmp_path):
        record = self.record_dict(kind="hfused", final_kind="hfused")
        record.pop("be_app2", None)
        with pytest.raises(ConfigError, match="be_app2"):
            validate_decision_jsonl(self.write(tmp_path, record))

    def test_spatial_validates(self, tmp_path):
        record = self.record_dict(kind="spatial", final_kind="spatial")
        assert validate_decision_jsonl(self.write(tmp_path, record)) == 1

    def test_chain_with_riders_validates(self, tmp_path):
        record = self.record_dict(
            kind="chain", final_kind="chain", riders=["mriq", "cutcp"],
        )
        assert validate_decision_jsonl(self.write(tmp_path, record)) == 1

    def test_chain_without_riders_rejected(self, tmp_path):
        record = self.record_dict(
            kind="chain", final_kind="chain", riders=[],
        )
        with pytest.raises(ConfigError, match="without riders"):
            validate_decision_jsonl(self.write(tmp_path, record))

    def test_non_string_riders_rejected(self, tmp_path):
        record = self.record_dict(riders=[7])
        with pytest.raises(ConfigError, match="riders"):
            validate_decision_jsonl(self.write(tmp_path, record))
