"""Tests for the aggregate report renderer."""

from repro.experiments import report


class _StubResult:
    def rows(self):
        return [["a", 1.0], ["b", 2.0]]

    def summary(self):
        return {"metric": 1.5}


class _WideResult:
    def rows(self):
        return [[i, float(i)] for i in range(40)]

    def summary(self):
        return {"n": 40}


class TestSection:
    def test_renders_table_and_summary(self):
        text = report._section("Demo", _StubResult, ["k", "v"])
        assert "== Demo ==" in text
        assert "metric = 1.5" in text
        assert "1.000" in text

    def test_long_tables_truncated(self):
        text = report._section("Wide", _WideResult, ["k", "v"])
        assert "..." in text
        assert text.count("\n") < 40


class TestCatalogue:
    def test_every_light_experiment_registered(self):
        titles = [t for t, _, _ in report._LIGHT]
        assert any("Table I" in t for t in titles)
        assert any("Fig. 20" in t for t in titles)
        assert any("Table III" in t for t in titles)

    def test_headers_match_arity(self):
        # Every registered experiment's headers are non-empty.
        for _, _, headers in list(report._LIGHT) + list(report._SERVER):
            assert len(headers) >= 2
