"""End-to-end integration tests across the whole stack.

These exercise the complete pipeline on small configurations:
kernel library -> PTB -> fusion search -> compile -> duration models ->
QoS-aware scheduling -> metrics, checking the cross-cutting invariants
that individual module tests cannot see.
"""

import pytest

from repro import (
    RTX2080TI,
    FusionCompiler,
    FusionSearch,
    OnlineModelManager,
    TackerSystem,
    default_library,
    model_by_name,
    ptb_transform,
)
from repro.runtime.metrics import throughput_improvement


@pytest.fixture(scope="module")
def system():
    return TackerSystem()


class TestPipeline:
    def test_full_offline_pipeline(self):
        """Library -> PTB -> search -> compile -> model -> predict."""
        gpu = RTX2080TI
        library = default_library()
        tc = ptb_transform(library.get("tgemm_m"), gpu)
        cd = ptb_transform(library.get("mriq"), gpu)
        decision = FusionSearch(gpu).search(tc, cd)
        assert decision.should_fuse
        artifact = FusionCompiler().compile(decision)
        assert "bar.sync" in artifact.source_text

        models = OnlineModelManager(gpu)
        fused = artifact.fused
        xtc = models.predict_kernel(tc.ir, tc.ir.default_grid)
        xcd = models.predict_kernel(cd.ir, cd.ir.default_grid)
        predicted = models.predict_fused(fused, xtc, xcd)
        actual = fused.corun(
            gpu, tc.ir.default_grid, cd.ir.default_grid
        ).duration_cycles
        assert predicted == pytest.approx(actual, rel=0.10)

    def test_fused_source_and_simulation_agree_on_structure(self):
        """The generated source's branch count matches the simulated
        warp groups."""
        gpu = RTX2080TI
        library = default_library()
        tc = ptb_transform(library.get("tgemm_l"), gpu)
        cd = ptb_transform(library.get("cp"), gpu)
        decision = FusionSearch(gpu).search(tc, cd)
        fused = decision.best.fused
        text = fused.source.render()
        branch_count = text.count("if (threadIdx.x <")
        assert branch_count == fused.tc_copies + fused.cd_copies


class TestEndToEndColocation:
    def test_tacker_beats_baymax_while_holding_qos(self, system):
        outcome = system.run_pair("resnet50", "cp", n_queries=40)
        assert outcome.improvement > 0.03
        assert outcome.tacker.p99_latency_ms <= system.qos_ms
        assert outcome.baymax.p99_latency_ms <= system.qos_ms

    def test_be_progress_identical_metric_between_policies(self, system):
        outcome = system.run_pair("vgg16", "mriq", n_queries=30)
        improvement = throughput_improvement(
            outcome.tacker, outcome.baymax
        )
        assert improvement == pytest.approx(outcome.improvement)

    def test_artifact_reuse_across_pairs(self, system):
        """Re-preparing a co-location never recompiles its artifacts."""
        from repro.runtime.workload import be_application

        model = model_by_name("resnet50")
        app = be_application("fft", system.library)
        system.prepare_pair(model, app)
        middle = len(system.compiler)
        compile_ms = system.compiler.total_compile_ms
        system.prepare_pair(model, app)
        assert len(system.compiler) == middle
        assert system.compiler.total_compile_ms == compile_ms
        # A second model reuses every shape it shares with the first.
        resnext = model_by_name("resnext")
        shared = {
            (t, c) for (t, c) in system.artifacts
            if t in {k.kernel for k in resnext.kernels}
        }
        system.prepare_pair(resnext, be_application("fft", system.library))
        assert shared <= set(system.artifacts)

    def test_determinism_across_runs(self):
        a = TackerSystem().run_pair("densenet", "lbm", n_queries=15)
        b = TackerSystem().run_pair("densenet", "lbm", n_queries=15)
        assert a.improvement == pytest.approx(b.improvement)
        assert a.tacker.latencies_ms == pytest.approx(
            b.tacker.latencies_ms
        )

    def test_v100_pipeline(self):
        from repro.config import V100

        system = TackerSystem(gpu=V100)
        outcome = system.run_pair("resnet50", "fft", n_queries=20)
        assert outcome.improvement > 0
        assert outcome.qos_satisfied
