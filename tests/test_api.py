"""The stable ``repro.api`` facade and the RunConfig consolidation."""

import warnings

import pytest

from repro import api
from repro.config import RTX2080TI
from repro.errors import ConfigError
from repro.runtime.runconfig import (
    DEFAULT_RUN_CONFIG,
    RunConfig,
    reset_legacy_warnings,
)
from repro.runtime.system import TackerSystem


class TestFacade:
    def test_every_exported_symbol_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_matches_package_root(self):
        """The facade and the package root agree on shared symbols."""
        import repro

        for name in set(api.__all__) & set(repro.__all__):
            assert getattr(api, name) is getattr(repro, name)

    def test_cluster_surface_present(self):
        for name in ("ClusterSpec", "NodeSpec", "default_cluster_spec",
                     "serve_cluster", "ClusterDispatcher", "ClusterResult"):
            assert name in api.__all__


class TestRunConfig:
    def test_defaults_are_the_papers_operating_point(self):
        assert DEFAULT_RUN_CONFIG == RunConfig(
            qos_ms=50.0, load=0.8, queries=200, seed=2022
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(qos_ms=0.0)
        with pytest.raises(ConfigError):
            RunConfig(load=0.0)
        with pytest.raises(ConfigError):
            RunConfig(load=1.2)
        with pytest.raises(ConfigError):
            RunConfig(queries=0)

    def test_with_overrides_ignores_none(self):
        base = RunConfig(qos_ms=40.0)
        assert base.with_overrides(qos_ms=None, load=None) is base
        assert base.with_overrides(load=0.9) == RunConfig(
            qos_ms=40.0, load=0.9
        )

    def test_with_overrides_rejects_unknown_knobs(self):
        with pytest.raises(ConfigError):
            RunConfig().with_overrides(qps=3)

    def test_hashable_cache_key(self):
        assert RunConfig(load=0.9) in {RunConfig(load=0.9)}


class TestKeywordOnlySignatures:
    def test_system_rejects_positional_knobs(self):
        with pytest.raises(TypeError):
            TackerSystem(RTX2080TI, 50.0)

    def test_server_rejects_positional_knobs(self):
        with pytest.raises(TypeError):
            api.ColocationServer(RTX2080TI, object(), object())


class TestDeprecationShim:
    def test_legacy_kwargs_warn_once_per_owner(self):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            system = TackerSystem(qos_ms=45.0)
        assert system.qos_ms == 45.0
        assert system.config.qos_ms == 45.0
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            again = TackerSystem(qos_ms=45.0)  # warned already: silent
        assert again.config.qos_ms == 45.0

    def test_config_and_legacy_kwargs_compose(self):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            system = TackerSystem(
                config=RunConfig(load=0.9), qos_ms=42.0
            )
        assert system.config == RunConfig(load=0.9, qos_ms=42.0)
