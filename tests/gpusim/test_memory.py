"""Tests for the fair-share DRAM model."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.engine import EventQueue
from repro.gpusim.memory import MemorySystem


def run_transfers(bandwidth, latency, requests):
    """Issue (start_time, nbytes) requests; return completion times."""
    queue = EventQueue()
    memory = MemorySystem(queue, bandwidth, latency)
    done = {}
    for index, (start, nbytes) in enumerate(requests):
        queue.schedule(
            start,
            lambda t, i=index, b=nbytes: memory.request(
                b, lambda t2, i=i: done.__setitem__(i, t2)
            ),
        )
    queue.run()
    return done, memory


class TestSingleTransfer:
    def test_latency_plus_streaming(self):
        done, _ = run_transfers(2.0, 100.0, [(0.0, 50.0)])
        assert done[0] == pytest.approx(100.0 + 25.0)

    def test_zero_bytes_pays_latency_only(self):
        done, _ = run_transfers(2.0, 100.0, [(0.0, 0.0)])
        assert done[0] == pytest.approx(100.0)

    def test_no_latency_config(self):
        done, _ = run_transfers(4.0, 0.0, [(0.0, 40.0)])
        assert done[0] == pytest.approx(10.0)


class TestSharing:
    def test_two_equal_transfers_halve_bandwidth(self):
        done, _ = run_transfers(2.0, 0.0, [(0.0, 100.0), (0.0, 100.0)])
        # Each gets 1 B/cycle while both are active.
        assert done[0] == pytest.approx(100.0)
        assert done[1] == pytest.approx(100.0)

    def test_short_transfer_finishes_first_then_rate_recovers(self):
        done, _ = run_transfers(2.0, 0.0, [(0.0, 20.0), (0.0, 100.0)])
        # Shared until the short one drains 20 B at 1 B/cyc (t=20);
        # the long one then has 80 B left at 2 B/cyc -> t = 60.
        assert done[0] == pytest.approx(20.0)
        assert done[1] == pytest.approx(60.0)

    def test_late_arrival_slows_in_flight_transfer(self):
        done, _ = run_transfers(2.0, 0.0, [(0.0, 100.0), (25.0, 100.0)])
        # First runs alone for 25 cycles (50 B done), then shares.
        # Remaining 50 B at 1 B/cyc -> finishes at 75.
        assert done[0] == pytest.approx(75.0)
        # Second: 50 B shared (until 75), then 50 B alone -> 100.
        assert done[1] == pytest.approx(100.0)

    def test_work_conservation(self):
        requests = [(0.0, 64.0), (3.0, 128.0), (7.0, 256.0)]
        done, memory = run_transfers(4.0, 10.0, requests)
        total_bytes = sum(b for _, b in requests)
        assert memory.bytes_served == pytest.approx(total_bytes)
        # Bandwidth is never exceeded: busy time >= bytes / bandwidth.
        assert memory.busy_cycles >= total_bytes / 4.0 - 1e-9

    def test_active_count_tracks_transfers(self):
        queue = EventQueue()
        memory = MemorySystem(queue, 1.0, 0.0)
        memory.request(10.0, lambda t: None)
        queue.schedule(1.0, lambda t: (
            pytest.approx(1) == memory.active_transfers))
        queue.run()
        assert memory.active_transfers == 0


class TestValidation:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(SimulationError):
            MemorySystem(EventQueue(), 0.0, 1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(SimulationError):
            MemorySystem(EventQueue(), 1.0, -1.0)

    def test_rejects_negative_bytes(self):
        memory = MemorySystem(EventQueue(), 1.0, 0.0)
        with pytest.raises(SimulationError):
            memory.request(-5.0, lambda t: None)


class TestLatencyPhase:
    def test_latency_does_not_consume_bandwidth(self):
        """A transfer in its latency phase must not slow active streams."""
        done, _ = run_transfers(2.0, 50.0, [(0.0, 100.0), (0.0, 100.0)])
        # Both start streaming at t=50 and share until done:
        # 100 B at 1 B/cyc each -> t = 150.
        assert done[0] == pytest.approx(150.0)
        assert done[1] == pytest.approx(150.0)

    def test_staggered_latency_windows(self):
        done, _ = run_transfers(2.0, 100.0, [(0.0, 100.0), (60.0, 100.0)])
        # T1 streams alone over [100, 150) and finishes before T2's
        # latency window ends at 160; T2 then streams alone -> 210.
        assert done[0] == pytest.approx(150.0)
        assert done[1] == pytest.approx(210.0)


class TestManyTransfers:
    def test_equal_transfers_finish_together(self):
        n = 8
        done, memory = run_transfers(
            4.0, 0.0, [(0.0, 64.0)] * n
        )
        times = sorted(done.values())
        assert times[0] == pytest.approx(times[-1])
        # Total time = total bytes / bandwidth when fully shared.
        assert times[-1] == pytest.approx(n * 64.0 / 4.0)
