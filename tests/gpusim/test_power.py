"""Tests for the power model (Section V-D)."""

import pytest

from repro.config import RTX2080TI, V100, GPUConfig, SMConfig
from repro.errors import ConfigError
from repro.gpusim.power import BOARD_POWER_LIMITS, PowerModel, PowerSample


class TestDraw:
    def test_tensor_kernel_hits_board_limit(self):
        model = PowerModel(RTX2080TI)
        assert model.draw_watts(True, False) == BOARD_POWER_LIMITS[
            "RTX2080Ti"
        ]

    def test_fused_stays_at_limit(self):
        """The paper's measurement: activating the CUDA cores alongside
        the Tensor cores does not raise power beyond the limit."""
        model = PowerModel(RTX2080TI)
        assert model.fused_draw_watts() == model.draw_watts(True, False)

    def test_cuda_only_below_limit(self):
        model = PowerModel(V100)
        assert model.draw_watts(False, True) < model.limit_watts

    def test_idle_far_below_limit(self):
        model = PowerModel(RTX2080TI)
        assert model.draw_watts(False, False) < 0.3 * model.limit_watts

    def test_unknown_gpu_rejected(self):
        bogus = GPUConfig("H100", 100, 1.0, 1000.0, SMConfig())
        with pytest.raises(ConfigError):
            PowerModel(bogus)


class TestSampling:
    def test_fully_fused_interval(self):
        model = PowerModel(RTX2080TI)
        sample = model.sample(
            duration_ms=10.0, tensor_busy_ms=10.0, cuda_busy_ms=10.0,
            work_ms=20.0,
        )
        assert sample.watts == pytest.approx(model.limit_watts)

    def test_fusion_improves_energy_per_work(self):
        """Same power, more work: fusion wins on energy per task."""
        model = PowerModel(RTX2080TI)
        serial = model.sample(20.0, tensor_busy_ms=10.0,
                              cuda_busy_ms=10.0, work_ms=20.0)
        fused = model.sample(10.5, tensor_busy_ms=10.0,
                             cuda_busy_ms=10.0, work_ms=20.0)
        assert fused.energy_per_work < serial.energy_per_work

    def test_sample_validation(self):
        model = PowerModel(RTX2080TI)
        with pytest.raises(ConfigError):
            model.sample(0.0, 0.0, 0.0, 1.0)
        sample = PowerSample(watts=100.0, duration_ms=5.0, work_ms=0.0)
        with pytest.raises(ConfigError):
            _ = sample.energy_per_work

    def test_energy_accounting(self):
        sample = PowerSample(watts=200.0, duration_ms=10.0, work_ms=5.0)
        assert sample.energy_mj == pytest.approx(2000.0)
        assert sample.energy_per_work == pytest.approx(400.0)
