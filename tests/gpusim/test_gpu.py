"""Tests for kernel launches and co-run policies."""

import pytest

from repro.config import RTX2080TI
from repro.errors import SimulationError
from repro.gpusim.gpu import (
    KernelLaunch,
    corun_concurrent,
    corun_fused_launch,
    corun_serial,
    corun_spatial,
    simulate_launch,
)
from repro.gpusim.resources import BlockResources
from repro.gpusim.warp import ComputeSegment, MemorySegment, WarpProgram

GPU = RTX2080TI


def tc_launch(grid=68 * 2 * 40, persistent=2):
    prog = WarpProgram(
        (ComputeSegment("tensor", 200.0), MemorySegment(256.0)), 4
    )
    return KernelLaunch(
        "tc_test", "tc", BlockResources(256, 64, 16 * 1024), grid,
        {"tc": (prog,) * 8}, persistent_blocks_per_sm=persistent,
    )


def cd_launch(grid=68 * 4 * 40, persistent=4, shmem=8 * 1024):
    prog = WarpProgram(
        (ComputeSegment("cuda", 200.0), MemorySegment(64.0)), 4
    )
    return KernelLaunch(
        "cd_test", "cd", BlockResources(256, 32, shmem), grid,
        {"cd": (prog,) * 8}, persistent_blocks_per_sm=persistent,
    )


class TestLaunchValidation:
    def test_rejects_bad_kind(self):
        with pytest.raises(SimulationError):
            KernelLaunch("x", "fp64", BlockResources(32, 0, 0), 1,
                         {"m": ()})

    def test_rejects_empty_template(self):
        with pytest.raises(SimulationError):
            KernelLaunch("x", "cd", BlockResources(32, 0, 0), 1, {})

    def test_rejects_negative_grid(self):
        with pytest.raises(SimulationError):
            KernelLaunch("x", "cd", BlockResources(32, 0, 0), -1,
                         {"m": ()})

    def test_with_grid(self):
        launch = tc_launch().with_grid(17)
        assert launch.grid_blocks == 17


class TestSimulateLaunch:
    def test_zero_grid_zero_duration(self):
        result = simulate_launch(tc_launch(grid=0), GPU)
        assert result.duration_cycles == 0.0

    def test_persistent_duration_scales_with_work(self):
        one = simulate_launch(tc_launch(grid=68 * 2 * 20), GPU)
        two = simulate_launch(tc_launch(grid=68 * 2 * 40), GPU)
        assert two.duration_cycles == pytest.approx(
            2 * one.duration_cycles, rel=0.05
        )

    def test_streaming_grid_scales_linearly(self):
        # Non-PTB launches beyond full residency scale continuously.
        prog = WarpProgram((ComputeSegment("cuda", 100.0),), 4)
        def launch(grid):
            return KernelLaunch(
                "lin", "cd", BlockResources(256, 32, 0), grid,
                {"m": (prog,) * 8},
            )
        base = simulate_launch(launch(68 * 4 * 10), GPU).duration_cycles
        double = simulate_launch(launch(68 * 4 * 20), GPU).duration_cycles
        assert double == pytest.approx(2 * base, rel=1e-6)

    def test_sub_residency_simulated_exactly(self):
        prog = WarpProgram((ComputeSegment("cuda", 100.0),), 2)
        launch = KernelLaunch(
            "small", "cd", BlockResources(256, 32, 0), 68,
            {"m": (prog,) * 8},
        )
        result = simulate_launch(launch, GPU)
        assert result.waves == 1
        assert result.duration_cycles > 0

    def test_iteration_cap_extrapolates(self):
        # A very long PTB loop still simulates quickly and scales right.
        short = simulate_launch(tc_launch(grid=68 * 2 * 48), GPU)
        long = simulate_launch(tc_launch(grid=68 * 2 * 480), GPU)
        assert long.duration_cycles == pytest.approx(
            10 * short.duration_cycles, rel=0.05
        )

    def test_tc_kernel_leaves_cuda_pipe_idle(self):
        result = simulate_launch(tc_launch(), GPU)
        assert result.pipe_timeline("cuda").total() == 0.0
        assert result.pipe_timeline("tensor").total() > 0.0


class TestCoRunPolicies:
    def test_serial_sum(self):
        tc, cd = tc_launch(), cd_launch()
        result = corun_serial(tc, cd, GPU)
        assert result.duration_cycles == pytest.approx(
            result.solo_a_cycles + result.solo_b_cycles
        )
        assert result.overlap == pytest.approx(0.0)

    def test_spatial_partition_slows_both(self):
        tc, cd = tc_launch(), cd_launch()
        result = corun_spatial(tc, cd, GPU)
        assert result.finish_a_cycles > result.solo_a_cycles
        assert result.finish_b_cycles > result.solo_b_cycles

    def test_spatial_fraction_bounds(self):
        with pytest.raises(SimulationError):
            corun_spatial(tc_launch(), cd_launch(), GPU, fraction_a=0.0)

    def test_concurrent_overlaps_when_resources_fit(self):
        result = corun_concurrent(tc_launch(), cd_launch(), GPU)
        assert result.policy == "concurrent"
        assert result.overlap > 0.2

    def test_concurrent_degrades_to_serial_for_fat_blocks(self):
        fat = cd_launch(persistent=1, shmem=52 * 1024)
        result = corun_concurrent(tc_launch(), fat, GPU)
        assert result.overlap == pytest.approx(0.0, abs=0.02)

    def test_concurrent_requires_ptb(self):
        plain = KernelLaunch(
            "plain", "cd", BlockResources(256, 32, 0), 68,
            {"m": (WarpProgram((ComputeSegment("cuda", 1.0),), 1),) * 8},
        )
        with pytest.raises(SimulationError):
            corun_concurrent(tc_launch(), plain, GPU)

    def test_fused_uses_both_pipes(self):
        tc_prog = WarpProgram(
            (ComputeSegment("tensor", 200.0), MemorySegment(256.0)), 4
        )
        cd_prog = WarpProgram(
            (ComputeSegment("cuda", 200.0), MemorySegment(64.0)), 8
        )
        fused = KernelLaunch(
            "fused_test", "mixed",
            BlockResources(512, 64, 24 * 1024), 68 * 2 * 40,
            {"tc": (tc_prog,) * 8, "cd": (cd_prog,) * 8},
            persistent_blocks_per_sm=2,
        )
        solo_tc = simulate_launch(tc_launch(), GPU).duration_cycles
        result = corun_fused_launch(fused, GPU, solo_tc, solo_tc)
        assert result.policy == "fused"
        assert result.overlap > 0.3

    def test_fused_rejects_non_mixed(self):
        with pytest.raises(SimulationError):
            corun_fused_launch(tc_launch(), GPU, 1.0, 1.0)
