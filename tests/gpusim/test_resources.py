"""Tests for occupancy accounting."""

import pytest

from repro.config import SMConfig
from repro.errors import OccupancyError
from repro.gpusim.resources import (
    BlockResources,
    blocks_per_sm,
    fits,
    occupancy_report,
)

SM = SMConfig(
    max_threads=1024, max_blocks=16, registers=65536,
    shared_mem_bytes=64 * 1024,
)


class TestBlockResources:
    def test_warps_round_up(self):
        assert BlockResources(33, 0, 0).warps == 2
        assert BlockResources(32, 0, 0).warps == 1

    def test_registers_allocated_per_warp(self):
        res = BlockResources(threads=40, regs_per_thread=32, shared_mem_bytes=0)
        # 2 warps x 32 threads x 32 regs, not 40 x 32.
        assert res.registers == 2 * 32 * 32

    def test_combined_adds_threads_and_shmem(self):
        a = BlockResources(256, 64, 16 * 1024)
        b = BlockResources(128, 40, 8 * 1024)
        c = a.combined(b)
        assert c.threads == 384
        assert c.shared_mem_bytes == 24 * 1024
        assert c.regs_per_thread == 64  # worse of the two

    def test_scaled_multiplies_threads_and_shmem(self):
        a = BlockResources(256, 64, 16 * 1024)
        s = a.scaled(2)
        assert s.threads == 512
        assert s.shared_mem_bytes == 32 * 1024
        assert s.regs_per_thread == 64

    def test_invalid_inputs(self):
        with pytest.raises(OccupancyError):
            BlockResources(0, 1, 1)
        with pytest.raises(OccupancyError):
            BlockResources(1, -1, 1)
        with pytest.raises(OccupancyError):
            BlockResources(256, 0, 0).scaled(0)


class TestBlocksPerSM:
    def test_thread_limited(self):
        res = BlockResources(512, 0, 0)
        assert blocks_per_sm(res, SM) == 2

    def test_shared_mem_limited(self):
        res = BlockResources(64, 0, 20 * 1024)
        assert blocks_per_sm(res, SM) == 3

    def test_register_limited(self):
        res = BlockResources(256, 64, 0)  # 16384 regs/block
        assert blocks_per_sm(res, SM) == 4

    def test_block_slot_limited(self):
        res = BlockResources(32, 1, 1)
        assert blocks_per_sm(res, SM) == SM.max_blocks

    def test_no_fit_raises(self):
        res = BlockResources(64, 0, 65 * 1024)
        with pytest.raises(OccupancyError):
            blocks_per_sm(res, SM)
        assert not fits(res, SM)

    def test_fits_true_case(self):
        assert fits(BlockResources(256, 32, 8 * 1024), SM)


class TestOccupancyReport:
    def test_reports_utilizations(self):
        res = BlockResources(256, 64, 16 * 1024)
        report = occupancy_report(res, SM)
        assert report["blocks_per_sm"] == 4
        assert report["thread_util"] == pytest.approx(1.0)
        assert report["shared_mem_util"] == pytest.approx(1.0)
        assert report["register_util"] == pytest.approx(1.0)

    def test_partial_utilization(self):
        res = BlockResources(128, 16, 0)
        report = occupancy_report(res, SM)
        assert 0 < report["thread_util"] <= 1.0
        assert report["shared_mem_util"] == 0.0
