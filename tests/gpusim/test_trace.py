"""Tests for timelines and overlap metrics."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.trace import Interval, Timeline, merge_busy, overlap_rate


class TestInterval:
    def test_length(self):
        assert Interval(2.0, 5.0).length == 3.0

    def test_rejects_inverted(self):
        with pytest.raises(SimulationError):
            Interval(5.0, 2.0)

    def test_intersection(self):
        a, b = Interval(0, 10), Interval(5, 15)
        assert a.intersection(b) == Interval(5, 10)

    def test_disjoint_intersection_is_none(self):
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_shifted(self):
        assert Interval(1, 2).shifted(10) == Interval(11, 12)


class TestTimeline:
    def test_open_close_records_interval(self):
        t = Timeline()
        t.open(1.0)
        t.close(4.0)
        assert t.intervals == [Interval(1.0, 4.0)]

    def test_open_is_idempotent_while_open(self):
        t = Timeline()
        t.open(1.0)
        t.open(2.0)
        t.close(5.0)
        assert t.total() == pytest.approx(4.0)

    def test_close_without_open_is_noop(self):
        t = Timeline()
        t.close(3.0)
        assert t.intervals == []

    def test_zero_length_intervals_dropped(self):
        t = Timeline()
        t.open(2.0)
        t.close(2.0)
        assert t.intervals == []

    def test_normalized_merges_overlaps(self):
        t = Timeline([Interval(0, 5), Interval(3, 8), Interval(10, 12)])
        merged = t.normalized().intervals
        assert merged == [Interval(0, 8), Interval(10, 12)]
        assert t.total() == pytest.approx(10.0)

    def test_intersection_of_timelines(self):
        a = Timeline([Interval(0, 10), Interval(20, 30)])
        b = Timeline([Interval(5, 25)])
        both = a.intersection(b)
        assert both.total() == pytest.approx(10.0)

    def test_shift_and_span(self):
        t = Timeline([Interval(1, 3)]).shifted(10.0)
        assert t.span() == 13.0
        assert Timeline().span() == 0.0

    def test_extend(self):
        a = Timeline([Interval(0, 1)])
        a.extend(Timeline([Interval(2, 3)]))
        assert a.total() == pytest.approx(2.0)


class TestMergeBusy:
    def test_union_of_units(self):
        a = Timeline([Interval(0, 5)])
        b = Timeline([Interval(3, 9)])
        merged = merge_busy([a, b])
        assert merged.total() == pytest.approx(9.0)


class TestOverlapRate:
    def test_perfect_overlap_is_half(self):
        assert overlap_rate(10.0, 10.0, 10.0) == pytest.approx(0.5)

    def test_serial_is_zero(self):
        assert overlap_rate(10.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_slower_than_serial_clamped(self):
        assert overlap_rate(10.0, 10.0, 25.0) == 0.0

    def test_rejects_degenerate(self):
        with pytest.raises(SimulationError):
            overlap_rate(0.0, 0.0, 1.0)
