"""Tests for the single-SM simulation: pipes, barriers, scheduling."""

import pytest

from repro.config import SMConfig
from repro.errors import SimulationError
from repro.gpusim.sm import BlockSpec, SMSimulation
from repro.gpusim.warp import (
    ComputeSegment,
    MemorySegment,
    SyncSegment,
    WarpProgram,
)

SM = SMConfig(
    max_threads=1024, max_blocks=16, registers=65536,
    shared_mem_bytes=64 * 1024, cuda_pipe_width=2, tensor_pipe_width=1,
    mem_latency_cycles=0.0,
)


def simulate(blocks, sm=SM, bandwidth=8.0):
    return SMSimulation(sm, bandwidth).run(blocks)


def block(program, warps, label="main"):
    return BlockSpec({label: (program,) * warps})


class TestPipeContention:
    def test_single_warp_compute_time(self):
        prog = WarpProgram((ComputeSegment("cuda", 100.0),), 3)
        result = simulate([block(prog, 1)])
        assert result.finish_time == pytest.approx(300.0)

    def test_pipe_width_limits_parallelism(self):
        # 4 warps on a width-2 pipe: 2 run at a time -> 2x serial batches.
        prog = WarpProgram((ComputeSegment("cuda", 100.0),), 1)
        result = simulate([block(prog, 4)])
        assert result.finish_time == pytest.approx(200.0)

    def test_warps_within_width_run_concurrently(self):
        prog = WarpProgram((ComputeSegment("cuda", 100.0),), 1)
        result = simulate([block(prog, 2)])
        assert result.finish_time == pytest.approx(100.0)

    def test_pipes_are_independent(self):
        cuda = WarpProgram((ComputeSegment("cuda", 100.0),), 4)
        tensor = WarpProgram((ComputeSegment("tensor", 100.0),), 4)
        both = BlockSpec({"cd": (cuda,) * 2, "tc": (tensor,)})
        result = simulate([both])
        # CUDA part: 2 warps x 4 iters on width 2 -> 400.
        # Tensor part: 1 warp x 4 iters on width 1 -> 400. Parallel.
        assert result.finish_time == pytest.approx(400.0)
        assert result.pipe_busy_cycles("cuda") == pytest.approx(400.0)
        assert result.pipe_busy_cycles("tensor") == pytest.approx(400.0)

    def test_slot_cycles_accumulate(self):
        prog = WarpProgram((ComputeSegment("cuda", 50.0),), 2)
        result = simulate([block(prog, 3)])
        assert result.pipe_slot_cycles["cuda"] == pytest.approx(300.0)


class TestMemoryIntegration:
    def test_memory_overlaps_compute_across_warps(self):
        # One warp computes while the other streams: with enough
        # bandwidth the two interleave almost perfectly.
        prog = WarpProgram(
            (ComputeSegment("cuda", 100.0), MemorySegment(800.0)), 2
        )
        result = simulate([block(prog, 2)], bandwidth=8.0)
        serial_one_warp = 2 * (100.0 + 100.0)
        assert result.finish_time < 2 * serial_one_warp
        assert result.bytes_served == pytest.approx(2 * 2 * 800.0)


class TestBarriers:
    def test_barrier_synchronizes_group(self):
        fast = WarpProgram(
            (ComputeSegment("cuda", 10.0), SyncSegment(0, 2)), 1
        )
        slow = WarpProgram(
            (ComputeSegment("cuda", 90.0), SyncSegment(0, 2)), 1
        )
        result = simulate([BlockSpec({"main": (fast, slow)})])
        # The fast warp waits for the slow one at the barrier.
        assert result.finish_time == pytest.approx(90.0)

    def test_partial_barriers_do_not_cross_groups(self):
        a = WarpProgram((ComputeSegment("cuda", 10.0), SyncSegment(0, 1)), 2)
        b = WarpProgram((ComputeSegment("cuda", 500.0), SyncSegment(1, 1)), 1)
        result = simulate([BlockSpec({"a": (a,), "b": (b,)})])
        finish_a = result.group_finish[(0, "a")]
        assert finish_a < 100.0  # never waited for group b

    def test_barriers_are_block_local(self):
        prog = WarpProgram(
            (ComputeSegment("cuda", 10.0), SyncSegment(0, 2)), 1
        )
        result = simulate([block(prog, 2), block(prog, 2)])
        assert result.finish_time < 100.0

    def test_mismatched_counts_raise(self):
        a = WarpProgram((SyncSegment(0, 2),), 1)
        b = WarpProgram((SyncSegment(0, 3),), 1)
        with pytest.raises(SimulationError, match="disagree"):
            simulate([BlockSpec({"main": (a, b)})])

    def test_unsatisfiable_barrier_deadlocks(self):
        lonely = WarpProgram((SyncSegment(0, 2),), 1)
        with pytest.raises(SimulationError, match="never finished"):
            simulate([block(lonely, 1)])


class TestBookkeeping:
    def test_group_finish_times_recorded(self):
        short = WarpProgram((ComputeSegment("cuda", 10.0),), 1)
        long = WarpProgram((ComputeSegment("tensor", 100.0),), 1)
        result = simulate([BlockSpec({"s": (short,), "l": (long,)})])
        assert result.group_finish[(0, "s")] == pytest.approx(10.0)
        assert result.group_finish[(0, "l")] == pytest.approx(100.0)
        assert result.group_finish_time("l") == pytest.approx(100.0)

    def test_unknown_group_raises(self):
        prog = WarpProgram((ComputeSegment("cuda", 1.0),), 1)
        result = simulate([block(prog, 1)])
        with pytest.raises(SimulationError):
            result.group_finish_time("nope")

    def test_zero_iteration_warps_finish_instantly(self):
        empty = WarpProgram((ComputeSegment("cuda", 10.0),), 0)
        result = simulate([block(empty, 2)])
        assert result.finish_time == 0.0

    def test_warp_slot_overflow_rejected(self):
        prog = WarpProgram((ComputeSegment("cuda", 1.0),), 1)
        too_many = [block(prog, 33)]
        with pytest.raises(SimulationError, match="warp slots"):
            simulate(too_many)

    def test_timeline_matches_busy_cycles(self):
        prog = WarpProgram((ComputeSegment("cuda", 100.0),), 2)
        result = simulate([block(prog, 1)])
        timeline = result.pipe_timelines["cuda"]
        assert timeline.total() == pytest.approx(200.0)


class TestZeroTensorWork:
    """Regression: a CUDA-only workload must report *exactly* zero
    tensor-pipe activity — any drift here would fabricate tensor
    utilization in the Fig. 1/2 stacked-utilization analysis."""

    PROG = WarpProgram(
        (ComputeSegment("cuda", 50.0), MemorySegment(64.0)), 3
    )

    def test_engine_reports_exact_zero(self):
        result = simulate([block(self.PROG, 4)])
        assert result.pipe_busy_cycles("tensor") == 0.0
        assert result.pipe_slot_cycles["tensor"] == 0.0
        assert result.pipe_timelines["tensor"].total() == 0.0
        assert result.pipe_busy_cycles("cuda") > 0.0

    def test_fast_path_reports_exact_zero(self):
        from repro.gpusim import fastpath

        result = fastpath.run_blocks(SM, 8.0, [block(self.PROG, 4)])
        assert result.pipe_busy_cycles("tensor") == 0.0
        assert result.pipe_slot_cycles["tensor"] == 0.0
