"""Equivalence suite for the vectorized analytic fast path.

The fast path now covers every block-set shape — plain, barriered,
multi-group and fused alike; these tests prove it is a drop-in
replacement by comparing both engines across the full kernel corpus
(barriered GEMMs included), a grid sweep, and fused co-run blocks, and
pin the property that ``supported()`` never accepts a shape the
analytic path mis-simulates.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.fusion.fuser import flexible_fuse
from repro.fusion.ptb import transform
from repro.gpusim import fastpath
from repro.gpusim.gpu import (
    _cap_iterations,
    _persistent_blocks,
    blocks_per_sm,
    run_blocks,
)
from repro.gpusim.sm import BlockSpec, SMSimulation
from repro.gpusim.validate import fastpath_reference_blocks
from repro.gpusim.warp import (
    ComputeSegment,
    MemorySegment,
    SyncSegment,
    WarpProgram,
)

REL_TOL = 1e-9

GRID_MULTIPLIERS = (0.25, 0.5, 1.0, 1.7, 3.0)


def _resident_blocks(ir, gpu, mult):
    """The exact block set ``simulate_launch`` would put on one SM."""
    grid = max(1, int(ir.default_grid * mult))
    launch = ir.launch(grid)
    occupancy = blocks_per_sm(launch.resources, gpu.sm)
    if launch.is_persistent:
        per_sm = min(launch.persistent_blocks_per_sm, occupancy)
        blocks = _persistent_blocks(launch, gpu, per_sm)
    else:
        per_sm_blocks = -(-launch.grid_blocks // gpu.num_sms)
        blocks = [
            BlockSpec(dict(launch.block_template))
            for _ in range(min(per_sm_blocks, occupancy))
        ]
    blocks, _ = _cap_iterations(blocks)
    return blocks


def _fused_blocks(fused, gpu, tc_grid, cd_grid):
    """The resident block set of a fused co-run launch."""
    launch = fused.launch(tc_grid, cd_grid)
    occupancy = blocks_per_sm(launch.resources, gpu.sm)
    per_sm = min(launch.persistent_blocks_per_sm, occupancy)
    blocks, _ = _cap_iterations(_persistent_blocks(launch, gpu, per_sm))
    return blocks


def _assert_equivalent(gpu, blocks):
    engine = SMSimulation(gpu.sm, gpu.bytes_per_cycle_per_sm).run(blocks)
    fast = fastpath.run_blocks(gpu.sm, gpu.bytes_per_cycle_per_sm, blocks)
    assert fast.finish_time == pytest.approx(
        engine.finish_time, rel=REL_TOL
    )
    for pipe in ("cuda", "tensor"):
        assert fast.pipe_timelines[pipe].total() == pytest.approx(
            engine.pipe_timelines[pipe].total(), rel=1e-9, abs=1e-6
        )
        assert fast.pipe_slot_cycles[pipe] == pytest.approx(
            engine.pipe_slot_cycles[pipe], rel=1e-9, abs=1e-6
        )
    assert fast.bytes_served == pytest.approx(
        engine.bytes_served, rel=1e-9, abs=1e-6
    )
    assert set(fast.group_finish) == set(engine.group_finish)
    for key, value in engine.group_finish.items():
        assert fast.group_finish[key] == pytest.approx(
            value, rel=REL_TOL, abs=1e-9
        )


class TestCorpusEquivalence:
    """Fast path matches the event engine across library x grid sweep."""

    def test_full_library_grid_sweep(self, gpu, library):
        checked = 0
        barriered = 0
        for ir in library:
            for mult in GRID_MULTIPLIERS:
                blocks = _resident_blocks(ir, gpu, mult)
                assert fastpath.supported(blocks)
                if fastpath.classify(blocks) == fastpath.SHAPE_BARRIER:
                    barriered += 1
                checked += 1
                _assert_equivalent(gpu, blocks)
        # the corpus must exercise the fast path broadly, and the
        # barriered GEMMs must be part of the sweep, not skipped
        assert checked >= 100
        assert barriered >= 10

    def test_v100_preset(self, v100, library):
        for name in ("mriq", "fft", "lbm", "relu", "sgemm", "wmma_gemm"):
            blocks = _resident_blocks(library.get(name), v100, 1.0)
            assert fastpath.supported(blocks)
            _assert_equivalent(v100, blocks)

    def test_mixed_heterogeneous_blocks(self, gpu):
        heavy = WarpProgram(
            (ComputeSegment("cuda", 170.0), MemorySegment(96.0)), 12
        )
        light = WarpProgram(
            (ComputeSegment("tensor", 90.0), MemorySegment(288.0)), 9
        )
        memory_only = WarpProgram((MemorySegment(512.0),), 5)
        blocks = [
            BlockSpec({"m": (heavy,) * 13}),
            BlockSpec({"m": (light,) * 7}),
            BlockSpec({"m": (memory_only,) * 3}),
        ]
        assert fastpath.supported(blocks)
        _assert_equivalent(gpu, blocks)

    def test_zero_byte_memory_segments(self, gpu):
        program = WarpProgram(
            (ComputeSegment("cuda", 50.0), MemorySegment(0.0)), 4
        )
        blocks = [BlockSpec({"m": (program,) * 6})]
        assert fastpath.supported(blocks)
        _assert_equivalent(gpu, blocks)


class TestWidenedShapes:
    """Barriered, multi-group and fused shapes now take the fast path."""

    def test_full_block_barrier(self, gpu):
        program = WarpProgram(
            (ComputeSegment("cuda", 10.0), MemorySegment(32.0),
             SyncSegment(0, 4)), 2
        )
        blocks = [BlockSpec({"m": (program,) * 4})]
        assert fastpath.classify(blocks) == fastpath.SHAPE_BARRIER
        assert fastpath.supported(blocks)
        _assert_equivalent(gpu, blocks)

    def test_partial_barrier(self, gpu):
        """Partial bar.sync (count < group warps) rounds interleave."""
        program = WarpProgram(
            (ComputeSegment("cuda", 35.0), MemorySegment(48.0),
             SyncSegment(0, 2)), 6
        )
        blocks = [BlockSpec({"m": (program,) * 6})]
        assert fastpath.supported(blocks)
        _assert_equivalent(gpu, blocks)

    def test_multi_group_barrier_free(self, gpu):
        tc = WarpProgram(
            (ComputeSegment("tensor", 110.0), MemorySegment(64.0)), 7
        )
        cd = WarpProgram(
            (ComputeSegment("cuda", 95.0), MemorySegment(96.0)), 5
        )
        blocks = [BlockSpec({"tc": (tc,) * 2, "cd": (cd,) * 2})]
        assert fastpath.classify(blocks) == fastpath.SHAPE_MULTI_GROUP
        assert fastpath.supported(blocks)
        _assert_equivalent(gpu, blocks)

    def test_barriered_library_kernels(self, gpu, library):
        for name in ("sgemm", "tgemm_l", "wmma_gemm"):
            blocks = _resident_blocks(library.get(name), gpu, 1.0)
            assert fastpath.classify(blocks) == fastpath.SHAPE_BARRIER
            assert fastpath.supported(blocks)
            _assert_equivalent(gpu, blocks)

    def test_fused_corun_blocks(self, gpu, library):
        """Real fused co-run blocks (per-copy partial barriers) match."""
        tc_ptb = transform(library.get("tgemm_l"), gpu)
        cd_ptb = transform(library.get("fft"), gpu)
        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 1)
        for tc_grid, cd_grid in ((512, 256), (96, 1024)):
            blocks = _fused_blocks(fused, gpu, tc_grid, cd_grid)
            assert fastpath.classify(blocks) == fastpath.SHAPE_FUSED
            assert fastpath.supported(blocks)
            _assert_equivalent(gpu, blocks)

    def test_reference_shapes_sweep(self, gpu, v100):
        """Per-shape references (shared with validate.py) on both GPUs."""
        for shape, blocks in fastpath_reference_blocks().items():
            assert fastpath.classify(blocks) == shape
            assert fastpath.supported(blocks)
            _assert_equivalent(gpu, blocks)
            _assert_equivalent(v100, blocks)


class TestProperties:
    """``supported()`` must never cover a shape the model mis-simulates."""

    def test_supported_implies_equivalent(self, gpu, library):
        """Every supported resident block set simulates identically."""
        for ir in library:
            blocks = _resident_blocks(ir, gpu, 1.3)
            if fastpath.supported(blocks):
                _assert_equivalent(gpu, blocks)

    def test_supported_shapes_is_classify_range(self):
        """Coverage is decided by shape class alone, so narrowing
        SUPPORTED_SHAPES is the one switch that reroutes a class."""
        for shape, blocks in fastpath_reference_blocks().items():
            assert fastpath.classify(blocks) == shape
            assert fastpath.supported(blocks) == (
                shape in fastpath.SUPPORTED_SHAPES
            )

    def test_barrier_count_mismatch_raises_like_engine(self, gpu):
        """Malformed barriers fail identically on both engines."""
        good = WarpProgram((SyncSegment(0, 4),), 1)
        bad = WarpProgram((SyncSegment(0, 3),), 1)
        blocks = [BlockSpec({"m": (good, good, bad, good)})]
        with pytest.raises(SimulationError, match="disagree on bar.sync"):
            SMSimulation(gpu.sm, gpu.bytes_per_cycle_per_sm).run(blocks)
        with pytest.raises(SimulationError, match="disagree on bar.sync"):
            fastpath.run_blocks(gpu.sm, gpu.bytes_per_cycle_per_sm, blocks)

    def test_unsatisfiable_barrier_raises_like_engine(self, gpu):
        """A deadlocked block raises the engine's deadlock error."""
        program = WarpProgram((SyncSegment(0, 4),), 1)
        blocks = [BlockSpec({"m": (program,) * 3})]
        with pytest.raises(SimulationError, match="never finished"):
            SMSimulation(gpu.sm, gpu.bytes_per_cycle_per_sm).run(blocks)
        with pytest.raises(SimulationError, match="never finished"):
            fastpath.run_blocks(gpu.sm, gpu.bytes_per_cycle_per_sm, blocks)


class TestDispatch:
    """run_blocks routes by shape class and records reasons."""

    def test_dispatch_counts_by_shape(self, gpu, library):
        fastpath.STATS.reset()
        sgemm = _resident_blocks(library.get("sgemm"), gpu, 1.0)
        mriq = _resident_blocks(library.get("mriq"), gpu, 1.0)
        run_blocks(gpu, mriq)
        run_blocks(gpu, sgemm)
        assert fastpath.STATS.fast == 2
        assert fastpath.STATS.engine == 0
        assert fastpath.STATS.total == 2
        assert fastpath.STATS.fast_fraction == pytest.approx(1.0)
        assert fastpath.STATS.fast_by_shape == {
            fastpath.SHAPE_PLAIN: 1,
            fastpath.SHAPE_BARRIER: 1,
        }
        assert fastpath.STATS.rejects == {}

    def test_env_toggle_disables_fastpath(self, gpu, library, monkeypatch):
        monkeypatch.setenv(fastpath.FASTPATH_ENV, "0")
        fastpath.STATS.reset()
        run_blocks(gpu, _resident_blocks(library.get("mriq"), gpu, 1.0))
        assert fastpath.STATS.fast == 0
        assert fastpath.STATS.engine == 1
        assert fastpath.STATS.rejects == {fastpath.REASON_DISABLED: 1}

    def test_unsupported_shape_records_reject_reason(
        self, gpu, monkeypatch
    ):
        """A shape outside SUPPORTED_SHAPES routes to the engine and
        shows up as a reject reason (the coverage-regression signal)."""
        monkeypatch.setattr(
            fastpath, "SUPPORTED_SHAPES",
            frozenset(fastpath.SHAPES) - {fastpath.SHAPE_FUSED},
        )
        fastpath.STATS.reset()
        blocks = fastpath_reference_blocks()["fused"]
        result = run_blocks(gpu, blocks)
        assert result.finish_time > 0
        assert fastpath.STATS.fast == 0
        assert fastpath.STATS.rejects == {fastpath.SHAPE_FUSED: 1}
