"""Equivalence suite for the analytic fast path.

The fast path replaces the event engine for single-group, barrier-free
block sets; these tests prove it is a drop-in replacement by comparing
both engines across the full kernel corpus and a grid sweep, and verify
that ineligible launches still route through the event engine.
"""

from __future__ import annotations

import pytest

from repro.gpusim import fastpath
from repro.gpusim.gpu import (
    _cap_iterations,
    _persistent_blocks,
    blocks_per_sm,
    run_blocks,
)
from repro.gpusim.sm import BlockSpec, SMSimulation
from repro.gpusim.warp import (
    ComputeSegment,
    MemorySegment,
    SyncSegment,
    WarpProgram,
)

REL_TOL = 1e-9

GRID_MULTIPLIERS = (0.25, 0.5, 1.0, 1.7, 3.0)


def _resident_blocks(ir, gpu, mult):
    """The exact block set ``simulate_launch`` would put on one SM."""
    grid = max(1, int(ir.default_grid * mult))
    launch = ir.launch(grid)
    occupancy = blocks_per_sm(launch.resources, gpu.sm)
    if launch.is_persistent:
        per_sm = min(launch.persistent_blocks_per_sm, occupancy)
        blocks = _persistent_blocks(launch, gpu, per_sm)
    else:
        per_sm_blocks = -(-launch.grid_blocks // gpu.num_sms)
        blocks = [
            BlockSpec(dict(launch.block_template))
            for _ in range(min(per_sm_blocks, occupancy))
        ]
    blocks, _ = _cap_iterations(blocks)
    return blocks


def _assert_equivalent(gpu, blocks):
    engine = SMSimulation(gpu.sm, gpu.bytes_per_cycle_per_sm).run(blocks)
    fast = fastpath.run_blocks(gpu.sm, gpu.bytes_per_cycle_per_sm, blocks)
    assert fast.finish_time == pytest.approx(
        engine.finish_time, rel=REL_TOL
    )
    for pipe in ("cuda", "tensor"):
        assert fast.pipe_timelines[pipe].total() == pytest.approx(
            engine.pipe_timelines[pipe].total(), rel=1e-9, abs=1e-6
        )
        assert fast.pipe_slot_cycles[pipe] == pytest.approx(
            engine.pipe_slot_cycles[pipe], rel=1e-9, abs=1e-6
        )
    assert fast.bytes_served == pytest.approx(
        engine.bytes_served, rel=1e-9, abs=1e-6
    )
    assert set(fast.group_finish) == set(engine.group_finish)
    for key, value in engine.group_finish.items():
        assert fast.group_finish[key] == pytest.approx(
            value, rel=REL_TOL, abs=1e-9
        )


class TestCorpusEquivalence:
    """Fast path matches the event engine across library x grid sweep."""

    def test_full_library_grid_sweep(self, gpu, library):
        checked = 0
        for ir in library:
            for mult in GRID_MULTIPLIERS:
                blocks = _resident_blocks(ir, gpu, mult)
                if not fastpath.supported(blocks):
                    continue
                checked += 1
                _assert_equivalent(gpu, blocks)
        # the corpus must actually exercise the fast path broadly
        assert checked >= 100

    def test_v100_preset(self, v100, library):
        for name in ("mriq", "fft", "lbm", "relu"):
            blocks = _resident_blocks(library.get(name), v100, 1.0)
            assert fastpath.supported(blocks)
            _assert_equivalent(v100, blocks)

    def test_mixed_heterogeneous_blocks(self, gpu):
        heavy = WarpProgram(
            (ComputeSegment("cuda", 170.0), MemorySegment(96.0)), 12
        )
        light = WarpProgram(
            (ComputeSegment("tensor", 90.0), MemorySegment(288.0)), 9
        )
        memory_only = WarpProgram((MemorySegment(512.0),), 5)
        blocks = [
            BlockSpec({"m": (heavy,) * 13}),
            BlockSpec({"m": (light,) * 7}),
            BlockSpec({"m": (memory_only,) * 3}),
        ]
        assert fastpath.supported(blocks)
        _assert_equivalent(gpu, blocks)

    def test_zero_byte_memory_segments(self, gpu):
        program = WarpProgram(
            (ComputeSegment("cuda", 50.0), MemorySegment(0.0)), 4
        )
        blocks = [BlockSpec({"m": (program,) * 6})]
        assert fastpath.supported(blocks)
        _assert_equivalent(gpu, blocks)


class TestEligibility:
    """Fused and barriered blocks must keep using the event engine."""

    def test_barrier_rejected(self, gpu):
        program = WarpProgram(
            (ComputeSegment("cuda", 10.0), SyncSegment(0, 4)), 2
        )
        assert not fastpath.supported([BlockSpec({"m": (program,) * 4})])

    def test_multi_group_rejected(self):
        tc = WarpProgram((ComputeSegment("tensor", 10.0),), 1)
        cd = WarpProgram((ComputeSegment("cuda", 10.0),), 1)
        blocks = [BlockSpec({"tc": (tc,) * 2, "cd": (cd,) * 2})]
        assert not fastpath.supported(blocks)

    def test_barriered_library_kernels_rejected(self, gpu, library):
        for name in ("sgemm", "tgemm_l", "wmma_gemm"):
            blocks = _resident_blocks(library.get(name), gpu, 1.0)
            assert not fastpath.supported(blocks)

    def test_dispatch_counts(self, gpu, library):
        fastpath.STATS.reset()
        sgemm = _resident_blocks(library.get("sgemm"), gpu, 1.0)
        mriq = _resident_blocks(library.get("mriq"), gpu, 1.0)
        run_blocks(gpu, mriq)
        run_blocks(gpu, sgemm)
        assert fastpath.STATS.fast == 1
        assert fastpath.STATS.engine == 1
        assert fastpath.STATS.total == 2
        assert fastpath.STATS.fast_fraction == pytest.approx(0.5)

    def test_env_toggle_disables_fastpath(self, gpu, library, monkeypatch):
        monkeypatch.setenv(fastpath.FASTPATH_ENV, "0")
        fastpath.STATS.reset()
        run_blocks(gpu, _resident_blocks(library.get("mriq"), gpu, 1.0))
        assert fastpath.STATS.fast == 0
        assert fastpath.STATS.engine == 1
