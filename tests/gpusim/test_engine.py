"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.engine import EventQueue


class TestEventOrdering:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda t: seen.append(("b", t)))
        queue.schedule(1.0, lambda t: seen.append(("a", t)))
        queue.schedule(9.0, lambda t: seen.append(("c", t)))
        end = queue.run()
        assert [s[0] for s in seen] == ["a", "b", "c"]
        assert end == 9.0

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        seen = []
        for label in "abc":
            queue.schedule(2.0, lambda t, l=label: seen.append(l))
        queue.run()
        assert seen == ["a", "b", "c"]

    def test_clock_advances_during_run(self):
        queue = EventQueue()
        times = []
        queue.schedule(3.0, lambda t: times.append(queue.now))
        queue.run()
        assert times == [3.0]

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def first(t):
            queue.schedule(t + 1.0, lambda t2: seen.append(t2))

        queue.schedule(1.0, first)
        assert queue.run() == 2.0
        assert seen == [2.0]

    def test_schedule_now_runs_at_current_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(4.0, lambda t: queue.schedule_now(
            lambda t2: seen.append(t2)))
        queue.run()
        assert seen == [4.0]


class TestGuards:
    def test_rejects_past_events(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda t: queue.schedule(1.0, lambda t2: None))
        with pytest.raises(SimulationError, match="before current time"):
            queue.run()

    def test_livelock_guard(self):
        queue = EventQueue()

        def rearm(t):
            queue.schedule(t, rearm)

        queue.schedule(0.0, rearm)
        with pytest.raises(SimulationError, match="exceeded"):
            queue.run(max_events=1000)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        seen = []
        handle = queue.schedule(1.0, lambda t: seen.append("x"))
        queue.cancel(handle)
        queue.run()
        assert seen == []

    def test_len_reflects_cancellations(self):
        queue = EventQueue()
        h = queue.schedule(1.0, lambda t: None)
        queue.schedule(2.0, lambda t: None)
        assert len(queue) == 2
        queue.cancel(h)
        assert len(queue) == 1

    def test_empty_run_returns_zero(self):
        assert EventQueue().run() == 0.0

    def test_cancel_after_fire_keeps_len_exact(self):
        """Cancelling an already-fired handle must not skew __len__."""
        queue = EventQueue()
        handles = []
        h1 = queue.schedule(1.0, lambda t: None)
        queue.schedule(2.0, lambda t: handles.append(
            queue.schedule(5.0, lambda t2: None)
        ))
        queue.run()
        queue.cancel(h1)  # fired long ago; must be a no-op
        assert len(queue) == 0
        queue.schedule(6.0, lambda t: None)
        assert len(queue) == 1

    def test_double_cancel_is_a_noop(self):
        queue = EventQueue()
        h = queue.schedule(1.0, lambda t: None)
        queue.schedule(2.0, lambda t: None)
        queue.cancel(h)
        queue.cancel(h)
        assert len(queue) == 1
        assert queue.run() == 2.0

    def test_cancellation_bookkeeping_is_bounded(self):
        """Stale handles must not accumulate (the lazy-cancel leak)."""
        queue = EventQueue()
        for i in range(100):
            h = queue.schedule(float(i + 1), lambda t: None)
            queue.cancel(h)
            queue.cancel(h + 1_000_000)  # never-scheduled handle
        assert len(queue) == 0
        assert len(queue._entries) == 0
        queue.run()
        assert len(queue._heap) == 0

    def test_cancelled_reschedule_pattern(self):
        """The memory system's cancel-and-reschedule pattern stays exact."""
        queue = EventQueue()
        seen = []
        handle = queue.schedule(10.0, lambda t: seen.append("old"))
        queue.cancel(handle)
        queue.schedule(4.0, lambda t: seen.append("new"))
        assert len(queue) == 1
        assert queue.run() == 4.0
        assert seen == ["new"]
