"""Tests for warp programs and segments."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.warp import (
    ComputeSegment,
    MemorySegment,
    SyncSegment,
    WarpProgram,
)


class TestSegments:
    def test_compute_validates_pipe(self):
        with pytest.raises(SimulationError):
            ComputeSegment("fp64", 10.0)

    def test_compute_rejects_negative_cycles(self):
        with pytest.raises(SimulationError):
            ComputeSegment("cuda", -1.0)

    def test_memory_rejects_negative_bytes(self):
        with pytest.raises(SimulationError):
            MemorySegment(-1.0)

    def test_sync_validates_barrier_id_range(self):
        SyncSegment(0, 4)
        SyncSegment(15, 4)
        with pytest.raises(SimulationError):
            SyncSegment(16, 4)
        with pytest.raises(SimulationError):
            SyncSegment(-1, 4)

    def test_sync_rejects_zero_count(self):
        with pytest.raises(SimulationError):
            SyncSegment(0, 0)


class TestWarpProgram:
    def make(self, iters=4):
        return WarpProgram(
            (ComputeSegment("cuda", 100.0), MemorySegment(64.0),
             SyncSegment(0, 8)),
            iterations=iters,
        )

    def test_per_iteration_aggregates(self):
        program = self.make()
        assert program.compute_cycles_per_iteration == 100.0
        assert program.bytes_per_iteration == 64.0
        assert program.pipes_used == {"cuda"}

    def test_with_iterations(self):
        assert self.make().with_iterations(9).iterations == 9

    def test_scaled_iterations_rounds_up(self):
        assert self.make(iters=4).scaled_iterations(1.5).iterations == 6
        assert self.make(iters=3).scaled_iterations(0.5).iterations == 2

    def test_scaled_iterations_zero_factor(self):
        assert self.make(iters=4).scaled_iterations(0).iterations == 0

    def test_scaled_iterations_rejects_negative(self):
        with pytest.raises(SimulationError):
            self.make().scaled_iterations(-1.0)

    def test_rejects_negative_iterations(self):
        with pytest.raises(SimulationError):
            WarpProgram((), -1)

    def test_mixed_pipe_program(self):
        program = WarpProgram(
            (ComputeSegment("cuda", 10.0), ComputeSegment("tensor", 20.0)),
            iterations=1,
        )
        assert program.pipes_used == {"cuda", "tensor"}
        assert program.compute_cycles_per_iteration == 30.0
