"""Tests for the GPU-preset self-checks."""

import pytest

from repro.config import RTX2080TI, V100, GPUConfig, SMConfig
from repro.errors import SimulationError
from repro.gpusim.validate import CheckResult, assert_valid, run_checks


class TestChecks:
    @pytest.mark.parametrize("gpu", [RTX2080TI, V100],
                             ids=["rtx2080ti", "v100"])
    def test_presets_pass_all_checks(self, gpu):
        results = run_checks(gpu)
        assert len(results) == 5
        for result in results:
            assert result.passed, str(result)

    def test_assert_valid_on_good_preset(self):
        assert_valid(RTX2080TI)

    def test_check_result_formatting(self):
        ok = CheckResult("demo", True, "fine")
        bad = CheckResult("demo", False, "broken")
        assert str(ok).startswith("[ok]")
        assert str(bad).startswith("[FAIL]")

    def test_degenerate_preset_fails(self):
        # A GPU with an absurdly slow memory slice breaks work scaling
        # assumptions?  No — scaling still holds; instead break the
        # capacity check with a strange pipe width via monkeypatching
        # is impossible (frozen).  Use a bandwidth so tiny the memory
        # formula check still passes but fusion overlap collapses.
        tiny = GPUConfig(
            name="RTX2080Ti",  # keep the power table happy
            num_sms=2,
            clock_ghz=1.0,
            dram_bandwidth_gbps=0.02,
            sm=SMConfig(),
        )
        results = {c.name: c for c in run_checks(tiny)}
        assert not results["fusion-overlap"].passed
        with pytest.raises(SimulationError):
            assert_valid(tiny)
