"""Tests for the hardware configuration layer."""

import pytest

from repro.config import (
    RTX2080TI,
    V100,
    GPUConfig,
    SMConfig,
    WARP_SIZE,
    gpu_preset,
)
from repro.errors import ConfigError


class TestSMConfig:
    def test_defaults_are_turing_like(self):
        sm = SMConfig()
        assert sm.max_threads == 1024
        assert sm.max_warps == 32

    def test_max_warps_uses_warp_size(self):
        sm = SMConfig(max_threads=2048)
        assert sm.max_warps == 2048 // WARP_SIZE

    def test_rejects_sub_warp_thread_count(self):
        with pytest.raises(ConfigError):
            SMConfig(max_threads=16)

    @pytest.mark.parametrize(
        "field", ["max_blocks", "registers", "shared_mem_bytes",
                  "cuda_pipe_width", "tensor_pipe_width"],
    )
    def test_rejects_non_positive_resources(self, field):
        with pytest.raises(ConfigError):
            SMConfig(**{field: 0})

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            SMConfig(mem_latency_cycles=-1.0)


class TestGPUConfig:
    def test_presets_match_paper_table(self):
        assert RTX2080TI.num_sms == 68
        assert RTX2080TI.sm.shared_mem_bytes == 64 * 1024
        assert V100.num_sms == 80
        assert V100.sm.shared_mem_bytes == 96 * 1024

    def test_cycle_conversion_roundtrip(self):
        cycles = 123456.0
        ms = RTX2080TI.cycles_to_ms(cycles)
        assert RTX2080TI.ms_to_cycles(ms) == pytest.approx(cycles)

    def test_one_ms_is_clock_million_cycles(self):
        assert RTX2080TI.ms_to_cycles(1.0) == pytest.approx(1.545e6)

    def test_bandwidth_slice_scales_with_sms(self):
        whole = RTX2080TI.bytes_per_cycle_per_sm
        half = RTX2080TI.with_sms(34)
        assert half.bytes_per_cycle_per_sm == pytest.approx(whole)

    def test_partition_bounds(self):
        with pytest.raises(ConfigError):
            RTX2080TI.with_sms(0)
        with pytest.raises(ConfigError):
            RTX2080TI.with_sms(69)

    def test_partition_keeps_identity(self):
        part = RTX2080TI.with_sms(10)
        assert part.num_sms == 10
        assert part.name == RTX2080TI.name

    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigError):
            GPUConfig("x", 0, 1.0, 100.0, SMConfig())
        with pytest.raises(ConfigError):
            GPUConfig("x", 1, 0.0, 100.0, SMConfig())
        with pytest.raises(ConfigError):
            GPUConfig("x", 1, 1.0, 0.0, SMConfig())


class TestPresetLookup:
    def test_case_insensitive(self):
        assert gpu_preset("RTX2080Ti") is RTX2080TI
        assert gpu_preset("v100") is V100

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown GPU preset"):
            gpu_preset("a100")
