"""Tests for the fusion-ratio search."""

import pytest

from repro.fusion.ptb import transform
from repro.fusion.search import FusionSearch
from repro.gpusim.resources import fits
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import cp, lbm, tpacf


@pytest.fixture(scope="module")
def search(gpu):
    return FusionSearch(gpu)


@pytest.fixture(scope="module")
def tc_ptb(gpu):
    return transform(canonical_gemms()["tgemm_l"], gpu)


class TestSearch:
    def test_compute_pair_fuses(self, search, tc_ptb, gpu):
        decision = search.search(tc_ptb, transform(cp(), gpu))
        assert decision.should_fuse
        assert decision.speedup_over_serial > 1.2
        assert decision.best.corun.overlap > 0.2

    def test_matched_durations_overlap_well(self, search, tc_ptb, gpu):
        """At a balanced load ratio, a compute pair overlaps >30%."""
        from repro.gpusim.gpu import simulate_launch

        cd = transform(cp(), gpu)
        solo_tc = simulate_launch(tc_ptb.launch(), gpu).duration_cycles
        solo_cd = simulate_launch(cd.launch(), gpu).duration_cycles
        cd_grid = round(cd.ir.default_grid * solo_tc / solo_cd)
        decision = search.search(tc_ptb, cd, cd_grid=cd_grid)
        assert decision.should_fuse
        assert decision.best.corun.overlap > 0.3

    def test_memory_pair_fuses_with_smaller_gain(self, search, tc_ptb, gpu):
        compute = search.search(tc_ptb, transform(cp(), gpu))
        memory = search.search(tc_ptb, transform(lbm(), gpu))
        assert memory.should_fuse
        assert memory.best.corun.overlap < compute.best.corun.overlap

    def test_every_candidate_fits_on_sm(self, search, tc_ptb, gpu):
        decision = search.search(tc_ptb, transform(lbm(), gpu))
        for candidate in decision.candidates:
            assert fits(candidate.fused.resources, gpu.sm)

    def test_best_is_fastest_candidate(self, search, tc_ptb, gpu):
        decision = search.search(tc_ptb, transform(cp(), gpu))
        fastest = min(
            c.corun.duration_cycles for c in decision.candidates
        )
        assert decision.best.corun.duration_cycles == fastest

    def test_fat_kernel_limited_to_single_copy(self, search, tc_ptb, gpu):
        decision = search.search(tc_ptb, transform(tpacf(), gpu))
        if decision.should_fuse:
            assert decision.best.ratio == (1, 1)

    def test_unfusable_speedup_is_one(self, search, tc_ptb, gpu):
        decision = search.search(tc_ptb, transform(cp(), gpu))
        if not decision.should_fuse:
            assert decision.speedup_over_serial == 1.0

    def test_candidate_ratio_exposed(self, search, tc_ptb, gpu):
        decision = search.search(tc_ptb, transform(cp(), gpu))
        for candidate in decision.candidates:
            tc_copies, cd_copies = candidate.ratio
            assert tc_copies >= 1 and cd_copies >= 1
