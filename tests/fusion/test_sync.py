"""Tests for bar.sync barrier allocation."""

import pytest

from repro.errors import BarrierAllocationError
from repro.fusion.sync import MAX_BARRIERS, BarrierAllocator
from repro.gpusim.warp import ComputeSegment, SyncSegment


class TestAllocation:
    def test_idempotent_per_key(self):
        alloc = BarrierAllocator()
        a = alloc.allocate("tc", 0, 0)
        assert alloc.allocate("tc", 0, 0) == a
        assert alloc.allocated == 1

    def test_distinct_copies_get_distinct_ids(self):
        alloc = BarrierAllocator()
        ids = {alloc.allocate("tc", copy, 0) for copy in range(4)}
        assert len(ids) == 4

    def test_distinct_branches_get_distinct_ids(self):
        alloc = BarrierAllocator()
        assert alloc.allocate("tc", 0, 0) != alloc.allocate("cd", 0, 0)

    def test_exhaustion_raises(self):
        alloc = BarrierAllocator()
        for copy in range(MAX_BARRIERS):
            alloc.allocate("cd", copy, 0)
        with pytest.raises(BarrierAllocationError):
            alloc.allocate("cd", MAX_BARRIERS, 0)

    def test_ids_within_hardware_range(self):
        alloc = BarrierAllocator()
        ids = [alloc.allocate("cd", c, 0) for c in range(MAX_BARRIERS)]
        assert all(0 <= i < MAX_BARRIERS for i in ids)


class TestSegmentRewriting:
    def test_syncs_rewritten_with_copy_count(self):
        alloc = BarrierAllocator()
        body = (ComputeSegment("cuda", 10.0), SyncSegment(0, 8))
        out = alloc.rewrite_segments(body, "cd", 1, warps=4)
        sync = out[1]
        assert isinstance(sync, SyncSegment)
        assert sync.count == 4

    def test_non_sync_segments_untouched(self):
        alloc = BarrierAllocator()
        body = (ComputeSegment("cuda", 10.0),)
        assert alloc.rewrite_segments(body, "cd", 0, 4) == body

    def test_same_copy_same_id_across_calls(self):
        alloc = BarrierAllocator()
        body = (SyncSegment(0, 8),)
        first = alloc.rewrite_segments(body, "tc", 0, 8)[0]
        second = alloc.rewrite_segments(body, "tc", 0, 8)[0]
        assert first.barrier_id == second.barrier_id


class TestSyncText:
    def test_emits_ptx_barrier(self):
        alloc = BarrierAllocator()
        text = alloc.sync_text("tc", 0, 0, warps=8)
        assert text == 'asm volatile("bar.sync 0, 256;");'

    def test_count_is_threads_not_warps(self):
        alloc = BarrierAllocator()
        text = alloc.sync_text("cd", 0, 0, warps=4)
        assert "128" in text
