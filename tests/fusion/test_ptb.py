"""Tests for the PTB transformation."""

import pytest

from repro.errors import FusionError
from repro.fusion.ptb import (
    PTB_PARAMS,
    profile_persistent_blocks,
    ptb_source,
    transform,
)
from repro.gpusim.gpu import simulate_launch
from repro.gpusim.resources import blocks_per_sm
from repro.kernels.parboil import fft, mriq
from repro.kernels.source import BLOCK_IDX, SourceLine, SyncPoint


class TestSourceTransform:
    def test_loop_structure_of_fig7(self):
        src = ptb_source(mriq().source)
        text = src.render()
        assert "for (int block_pos = blockIdx.x;" in text
        assert "block_pos < original_block_num;" in text
        assert "block_pos += issued_block_num)" in text

    def test_block_idx_rewritten_inside_loop(self):
        src = ptb_source(mriq().source)
        inner = [
            s.text for s in src.body
            if isinstance(s, SourceLine) and s.text.startswith("    ")
        ]
        assert all(BLOCK_IDX not in line for line in inner)

    def test_new_parameters_appended(self):
        src = ptb_source(mriq().source)
        assert src.params[-2:] == PTB_PARAMS

    def test_name_prefixed(self):
        assert ptb_source(mriq().source).name == "ptb_mriq"

    def test_sync_points_preserved(self):
        src = ptb_source(fft().source)
        assert src.sync_count == fft().source.sync_count
        assert any(isinstance(s, SyncPoint) for s in src.body)


class TestProfiling:
    def test_profiled_count_is_feasible(self, gpu):
        kernel = mriq()
        count = profile_persistent_blocks(kernel, gpu)
        assert 1 <= count <= blocks_per_sm(kernel.resources, gpu.sm)

    def test_profiled_count_not_worse_than_one_block(self, gpu):
        kernel = mriq()
        best = transform(kernel, gpu)
        single = transform(kernel, gpu, persistent_blocks_per_sm=1)
        d_best = simulate_launch(best.launch(), gpu).duration_cycles
        d_single = simulate_launch(single.launch(), gpu).duration_cycles
        assert d_best <= d_single * 1.0001


class TestTransform:
    def test_explicit_count_respected(self, gpu):
        ptb = transform(mriq(), gpu, persistent_blocks_per_sm=2)
        assert ptb.persistent_blocks_per_sm == 2
        assert ptb.launch().persistent_blocks_per_sm == 2

    def test_infeasible_count_rejected(self, gpu):
        with pytest.raises(FusionError):
            transform(mriq(), gpu, persistent_blocks_per_sm=99)
        with pytest.raises(FusionError):
            transform(mriq(), gpu, persistent_blocks_per_sm=0)

    def test_ptb_duration_close_to_original(self, gpu):
        """PTB restructures the grid without changing the work: the
        transformed kernel should run within ~15% of the original."""
        kernel = fft()
        original = simulate_launch(kernel.launch(), gpu).duration_cycles
        ptb = transform(kernel, gpu)
        transformed = simulate_launch(ptb.launch(), gpu).duration_cycles
        assert transformed == pytest.approx(original, rel=0.15)

    def test_launch_covers_custom_grid(self, gpu):
        ptb = transform(mriq(), gpu)
        launch = ptb.launch(1234)
        assert launch.grid_blocks == 1234
        assert launch.is_persistent
