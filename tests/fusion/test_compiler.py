"""Tests for fused-artifact compilation and caching."""

import pytest

from repro.fusion.compiler import ONLINE_JIT_MS, FusionCompiler
from repro.fusion.ptb import transform
from repro.fusion.search import FusionSearch
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import fft


@pytest.fixture(scope="module")
def decision(gpu):
    search = FusionSearch(gpu)
    tc = transform(canonical_gemms()["tgemm_l"], gpu)
    cd = transform(fft(), gpu)
    return search.search(tc, cd)


class TestCompile:
    def test_artifact_fields(self, decision):
        compiler = FusionCompiler()
        artifact = compiler.compile(decision)
        assert artifact is not None
        assert artifact.library_name == "libfused_tgemm_l_fft.so"
        assert artifact.key == ("tgemm_l", "fft")
        assert "bar.sync" in artifact.source_text

    def test_compile_cost_anchored_to_paper(self, decision):
        """Section VIII-I: ~0.9 s compile, ~62 KB library per pair."""
        artifact = FusionCompiler().compile(decision)
        assert 400 <= artifact.compile_ms <= 2000
        assert 30 * 1024 <= artifact.library_bytes <= 150 * 1024

    def test_static_compile_beats_online_jit(self, decision):
        artifact = FusionCompiler().compile(decision)
        # The offline compile is paid once; the paper's point is that
        # paying ~900 ms *online per launch* breaks QoS.
        assert ONLINE_JIT_MS == 900.0
        assert artifact.compile_ms < 5 * ONLINE_JIT_MS

    def test_cache_hit_returns_same_artifact(self, decision):
        compiler = FusionCompiler()
        first = compiler.compile(decision)
        second = compiler.compile(decision)
        assert first is second
        assert len(compiler) == 1
        assert compiler.total_compile_ms == first.compile_ms

    def test_lookup(self, decision):
        compiler = FusionCompiler()
        compiler.compile(decision)
        assert compiler.lookup("tgemm_l", "fft") is not None
        assert compiler.lookup("tgemm_l", "nope") is None
        assert ("tgemm_l", "fft") in compiler

    def test_rejected_pairs_recorded(self, decision):
        from dataclasses import replace

        compiler = FusionCompiler()
        rejected = replace(decision, best=None)
        assert compiler.compile(rejected) is None
        assert compiler.is_rejected("tgemm_l", "fft")
        assert len(compiler) == 0

    def test_total_library_bytes(self, decision):
        compiler = FusionCompiler()
        artifact = compiler.compile(decision)
        assert compiler.total_library_bytes == artifact.library_bytes
