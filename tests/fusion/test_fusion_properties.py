"""Property-based tests over the fusion machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RTX2080TI
from repro.errors import FusionError
from repro.fusion.fuser import flexible_fuse
from repro.fusion.ptb import transform
from repro.gpusim.gpu import simulate_launch
from repro.gpusim.resources import fits
from repro.gpusim.warp import ComputeSegment, SyncSegment
from repro.kernels.ir import make_kernel
from repro.kernels.source import elementwise_source, tiled_source

GPU = RTX2080TI

tc_kernels = st.builds(
    lambda threads, regs, shmem_kb, cycles, iters, grid: make_kernel(
        "prop_tc", "tc",
        threads=threads, regs=regs, shared_mem=shmem_kb * 1024,
        compute_cycles=float(cycles), mem_bytes=128.0,
        iters_per_block=iters, default_grid=grid,
        source=tiled_source("prop_tc", ("half* a",), ("mma;",)),
        syncs_per_iter=1,
    ),
    threads=st.sampled_from([128, 256]),
    regs=st.integers(24, 64),
    shmem_kb=st.integers(4, 20),
    cycles=st.integers(100, 500),
    iters=st.integers(4, 24),
    grid=st.integers(500, 4000),
)

cd_kernels = st.builds(
    lambda threads, regs, shmem_kb, cycles, nbytes, iters, grid: make_kernel(
        "prop_cd", "cd",
        threads=threads, regs=regs, shared_mem=shmem_kb * 1024,
        compute_cycles=float(cycles), mem_bytes=float(nbytes),
        iters_per_block=iters, default_grid=grid,
        source=elementwise_source("prop_cd", "f(in[i])"),
    ),
    threads=st.sampled_from([64, 128, 256]),
    regs=st.integers(16, 56),
    shmem_kb=st.integers(0, 24),
    cycles=st.integers(50, 500),
    nbytes=st.integers(16, 1024),
    iters=st.integers(4, 24),
    grid=st.integers(500, 4000),
)

copy_counts = st.tuples(st.integers(1, 3), st.integers(1, 3))


@given(tc_kernels, cd_kernels, copy_counts)
@settings(max_examples=25, deadline=None)
def test_fused_block_respects_sm_and_barriers(tc_ir, cd_ir, copies):
    tc_copies, cd_copies = copies
    tc = transform(tc_ir, GPU, persistent_blocks_per_sm=1)
    cd = transform(cd_ir, GPU, persistent_blocks_per_sm=1)
    try:
        fused = flexible_fuse(tc, cd, GPU, tc_copies, cd_copies)
    except FusionError:
        # Must only refuse when the combined block genuinely overflows.
        combined = tc_ir.resources.scaled(tc_copies).combined(
            cd_ir.resources.scaled(cd_copies)
        )
        assert not fits(combined, GPU.sm)
        return
    # Fused block fits, and per-copy barriers never collide.
    assert fits(fused.resources, GPU.sm)
    barrier_ids = [
        seg.barrier_id
        for program in fused.tc_programs + fused.cd_programs
        for seg in program.segments
        if isinstance(seg, SyncSegment)
    ]
    per_copy = {}
    for program_index, program in enumerate(fused.tc_programs):
        copy = program_index // tc.ir.warps_per_block
        for seg in program.segments:
            if isinstance(seg, SyncSegment):
                per_copy.setdefault(("tc", copy), set()).add(seg.barrier_id)
    groups = list(per_copy.values())
    for i, a in enumerate(groups):
        for b in groups[i + 1:]:
            assert a.isdisjoint(b)
    assert all(0 <= b <= 15 for b in barrier_ids)


@given(tc_kernels, cd_kernels)
@settings(max_examples=15, deadline=None)
def test_fused_duration_bounded_by_pipe_work(tc_ir, cd_ir):
    """The fused kernel can never beat the issue-pipe work lower bound."""
    tc = transform(tc_ir, GPU, persistent_blocks_per_sm=1)
    cd = transform(cd_ir, GPU, persistent_blocks_per_sm=1)
    try:
        fused = flexible_fuse(tc, cd, GPU, 1, 1)
    except FusionError:
        return
    launch = fused.launch(tc_ir.default_grid, cd_ir.default_grid)
    duration = simulate_launch(launch, GPU).duration_cycles

    def pipe_work(template_progs, width):
        total = 0.0
        for program in template_progs:
            per_iter = sum(
                s.cycles for s in program.segments
                if isinstance(s, ComputeSegment)
            )
            total += per_iter * program.iterations
        return total / width

    tc_bound = pipe_work(
        launch.block_template["tc"], GPU.sm.tensor_pipe_width
    )
    cd_bound = pipe_work(
        launch.block_template["cd"], GPU.sm.cuda_pipe_width
    )
    assert duration >= max(tc_bound, cd_bound) - 1e-6


@given(tc_kernels, cd_kernels, st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_fused_launch_work_scaling(tc_ir, cd_ir, factor):
    """Scaling both grids scales the fused duration proportionally."""
    tc = transform(tc_ir, GPU, persistent_blocks_per_sm=1)
    cd = transform(cd_ir, GPU, persistent_blocks_per_sm=1)
    try:
        fused = flexible_fuse(tc, cd, GPU, 1, 1)
    except FusionError:
        return
    base_tc = fused.tc_workers * 4
    base_cd = fused.cd_workers * 4
    one = simulate_launch(fused.launch(base_tc, base_cd), GPU)
    many = simulate_launch(
        fused.launch(base_tc * factor, base_cd * factor), GPU
    )
    assert many.duration_cycles >= one.duration_cycles * factor * 0.8
    assert many.duration_cycles <= one.duration_cycles * factor * 1.3
