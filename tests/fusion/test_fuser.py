"""Tests for direct and flexible kernel fusion."""

import pytest

from repro.errors import FusionError
from repro.fusion.fuser import direct_fuse, flexible_fuse
from repro.fusion.ptb import transform
from repro.gpusim.gpu import simulate_launch
from repro.kernels.gemm import canonical_gemms
from repro.kernels.parboil import fft, mriq, tpacf


@pytest.fixture(scope="module")
def tc_ptb(gpu):
    return transform(canonical_gemms()["tgemm_l"], gpu)


@pytest.fixture(scope="module")
def cd_ptb(gpu):
    return transform(fft(), gpu)


class TestFlexibleFusion:
    def test_kind_check(self, gpu, tc_ptb, cd_ptb):
        with pytest.raises(FusionError):
            flexible_fuse(cd_ptb, tc_ptb, gpu, 1, 1)

    def test_copy_counts_positive(self, gpu, tc_ptb, cd_ptb):
        with pytest.raises(FusionError):
            flexible_fuse(tc_ptb, cd_ptb, gpu, 0, 1)

    def test_resource_overflow_rejected(self, gpu, tc_ptb):
        fat = transform(tpacf(), gpu)
        with pytest.raises(FusionError, match="exceeds SM resources"):
            flexible_fuse(tc_ptb, fat, gpu, 2, 1)  # 32K + 48K > 64K

    def test_fused_resources_are_summed(self, gpu, tc_ptb, cd_ptb):
        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 1)
        assert fused.resources.threads == 2 * 256 + 256
        assert fused.resources.shared_mem_bytes == 2 * 16384 + 8192

    def test_warp_groups_sized_by_copies(self, gpu, tc_ptb, cd_ptb):
        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 1)
        assert len(fused.tc_programs) == 2 * 8
        assert len(fused.cd_programs) == 8

    def test_barrier_ids_distinct_across_copies(self, gpu, tc_ptb, cd_ptb):
        from repro.gpusim.warp import SyncSegment

        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 1)
        ids_copy0 = {
            s.barrier_id for s in fused.tc_programs[0].segments
            if isinstance(s, SyncSegment)
        }
        ids_copy1 = {
            s.barrier_id for s in fused.tc_programs[8].segments
            if isinstance(s, SyncSegment)
        }
        assert ids_copy0.isdisjoint(ids_copy1)

    def test_fused_source_structure(self, gpu, tc_ptb, cd_ptb):
        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 1)
        text = fused.source.render()
        assert "bar.sync" in text
        assert "__syncthreads" not in text
        assert "} else if (threadIdx.x < 512)" in text
        assert "int thread_id = threadIdx.x - 512;" in text

    def test_launch_folds_grids_into_iterations(self, gpu, tc_ptb, cd_ptb):
        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 1)
        small = fused.launch(fused.tc_workers, fused.cd_workers)
        big = fused.launch(fused.tc_workers * 4, fused.cd_workers * 4)
        iters_small = small.block_template["tc"][0].iterations
        iters_big = big.block_template["tc"][0].iterations
        assert iters_big == 4 * iters_small

    def test_launch_rejects_negative_grids(self, gpu, tc_ptb, cd_ptb):
        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 1)
        with pytest.raises(FusionError):
            fused.launch(-1, 10)

    def test_corun_uses_both_pipes_and_beats_serial(
        self, gpu, tc_ptb, cd_ptb
    ):
        fused = flexible_fuse(tc_ptb, cd_ptb, gpu, 2, 2)
        corun = fused.corun(
            gpu, tc_ptb.ir.default_grid, cd_ptb.ir.default_grid
        )
        serial = corun.solo_a_cycles + corun.solo_b_cycles
        assert corun.duration_cycles < serial
        assert corun.overlap > 0.2


class TestDirectFusion:
    def test_kind_check(self):
        with pytest.raises(FusionError):
            direct_fuse(mriq(), mriq())

    def test_source_has_both_branches(self):
        tc = canonical_gemms()["tgemm_l"]
        fusion = direct_fuse(tc, fft())
        text = fusion.source.render()
        assert "if (threadIdx.x < 256)" in text
        assert "} else if (threadIdx.x < 512)" in text

    def test_resource_sum_halves_occupancy(self, gpu):
        tc = canonical_gemms()["tgemm_l"]
        fusion = direct_fuse(tc, fft())
        from repro.gpusim.resources import blocks_per_sm

        fused_occ = blocks_per_sm(fusion.resources, gpu.sm)
        solo_occ = blocks_per_sm(tc.resources, gpu.sm)
        assert fused_occ < solo_occ

    def test_direct_fusion_brings_no_benefit(self, gpu):
        """Fig. 3: the 1:1 direct fusion runs in about the serial time."""
        tc = canonical_gemms()["tgemm_l"]
        cd = fft()
        fusion = direct_fuse(tc, cd)
        # Equal-duration components, as in the Fig. 3 experiment setup.
        solo_tc = simulate_launch(tc.launch(), gpu).duration_cycles
        cd_grid = round(
            cd.default_grid
            * solo_tc
            / simulate_launch(cd.launch(), gpu).duration_cycles
        )
        result = fusion.simulate(gpu, tc.default_grid, cd_grid)
        norm = result.duration_cycles / (
            result.solo_a_cycles + result.solo_b_cycles
        )
        assert norm > 0.8  # barely better than serial

    def test_uneven_grids_run_tail(self, gpu):
        tc = canonical_gemms()["tgemm_l"]
        fusion = direct_fuse(tc, fft())
        balanced = fusion.simulate(gpu, 1000, 1000)
        lopsided = fusion.simulate(gpu, 1000, 3000)
        assert lopsided.duration_cycles > balanced.duration_cycles
        assert lopsided.finish_b_cycles == lopsided.duration_cycles
